// Package motion turns raw IMU streams into the relative location
// measurements (RLMs) MoLoc consumes: it detects walking, counts steps
// (both the Discrete Step Counting baseline and the paper's Continuous
// Step Counting), estimates step length from the user's height and
// weight, and recovers the motion direction from compass readings via a
// placement-offset estimator in the spirit of Zee.
package motion

import (
	"fmt"
	"math"

	"moloc/internal/geom"
	"moloc/internal/sensors"
	"moloc/internal/stats"
)

// Config holds the motion-processing constants.
type Config struct {
	// PeakStd is the step-detection threshold above the window mean, in
	// units of the window's standard deviation.
	PeakStd float64
	// MinPeakSep is the minimum spacing between detected steps in
	// seconds; humans do not step faster than ~3.3 Hz.
	MinPeakSep float64
	// WalkStd is the minimum accelerometer-magnitude standard deviation
	// (m/s^2) for an interval to count as walking.
	WalkStd float64
	// MinPeakRise is the absolute minimum height of a step peak above
	// the window mean, in m/s^2. It suppresses spurious peaks from pure
	// sensor noise when the user stands still.
	MinPeakRise float64
	// StepLenSlope and StepLenBase give the height-based step-length
	// model of Constandache et al. [25]: stepLen = Slope*height + Base,
	// adjusted by weight below.
	StepLenSlope float64
	StepLenBase  float64
	// StepLenWeightAdj is the step-length change in meters per kg away
	// from a 70 kg reference (heavier walkers take slightly shorter
	// steps).
	StepLenWeightAdj float64
	// UseGyro fuses gyroscope readings into the heading estimate with a
	// Kalman filter (the paper's future-work refinement) instead of
	// using the raw compass mean.
	UseGyro bool
}

// NewConfig returns the defaults used throughout the reproduction.
func NewConfig() Config {
	return Config{
		PeakStd:          0.4,
		MinPeakSep:       0.3,
		MinPeakRise:      1.0,
		WalkStd:          1.0,
		StepLenSlope:     0.41,
		StepLenBase:      0.02,
		StepLenWeightAdj: -0.001,
	}
}

// Validate rejects unusable motion configuration.
func (c Config) Validate() error {
	if c.MinPeakSep <= 0 {
		return fmt.Errorf("motion: MinPeakSep must be positive, got %g", c.MinPeakSep)
	}
	if c.WalkStd < 0 {
		return fmt.Errorf("motion: WalkStd must be non-negative, got %g", c.WalkStd)
	}
	if c.StepLenSlope <= 0 {
		return fmt.Errorf("motion: StepLenSlope must be positive, got %g", c.StepLenSlope)
	}
	return nil
}

// StepLength returns the user's estimated step length in meters from
// height (m) and weight (kg), per the model of [25].
func StepLength(cfg Config, heightM, weightKg float64) float64 {
	return cfg.StepLenSlope*heightM + cfg.StepLenBase +
		cfg.StepLenWeightAdj*(weightKg-70)
}

// IsWalking reports whether the samples show the oscillation of a
// walking user (Sec. IV-B1: "we first detect whether a user is walking
// throughout an interval of time").
func IsWalking(cfg Config, samples []sensors.Sample) bool {
	if len(samples) < 4 {
		return false
	}
	var o stats.Online
	for _, s := range samples {
		o.Add(s.Accel)
	}
	return o.StdDev() >= cfg.WalkStd
}

// DetectSteps returns the timestamps of detected steps: local maxima of
// the accelerometer magnitude above an adaptive threshold (window mean
// plus PeakStd standard deviations), separated by at least MinPeakSep
// seconds. This is the standard peak-picking detector the repetitive
// pattern of Fig. 4 supports.
func DetectSteps(cfg Config, samples []sensors.Sample) []float64 {
	if len(samples) < 3 {
		return nil
	}
	var o stats.Online
	for _, s := range samples {
		o.Add(s.Accel)
	}
	rise := cfg.PeakStd * o.StdDev()
	if rise < cfg.MinPeakRise {
		rise = cfg.MinPeakRise
	}
	threshold := o.Mean() + rise

	var steps []float64
	lastStep := math.Inf(-1)
	for i := 1; i < len(samples)-1; i++ {
		cur := samples[i]
		if cur.Accel < threshold {
			continue
		}
		if cur.Accel < samples[i-1].Accel || cur.Accel <= samples[i+1].Accel {
			continue
		}
		if cur.T-lastStep < cfg.MinPeakSep {
			continue
		}
		steps = append(steps, cur.T)
		lastStep = cur.T
	}
	return steps
}

// OffsetDSC is Discrete Step Counting: offset = integral step count
// times step length. It ignores the "odd time" before the first and
// after the last detected step, the deficiency the paper identifies.
func OffsetDSC(stepTimes []float64, stepLen float64) float64 {
	return float64(len(stepTimes)) * stepLen
}

// OffsetCSC is the paper's Continuous Step Counting (Sec. IV-B1): the
// walking period is estimated from the time covering all detected
// steps; the odd time (interval minus the covering time) divided by the
// period yields decimal steps, recovering the motion DSC misses before
// the first and after the last detected step. t0 and t1 bound the
// localization interval.
//
// One refinement over the paper's prose: n detected step peaks span n-1
// gait periods, so the period is covering/(n-1), not covering/n; with
// that the estimate (n-1) + odd/period is unbiased for a user walking
// the whole interval (it telescopes to interval/period).
func OffsetCSC(stepTimes []float64, t0, t1, stepLen float64) float64 {
	n := len(stepTimes)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return stepLen
	}
	covering := stepTimes[n-1] - stepTimes[0]
	if covering <= 0 {
		return float64(n) * stepLen
	}
	period := covering / float64(n-1)
	odd := (t1 - t0) - covering
	if odd < 0 {
		odd = 0
	}
	decimal := odd / period
	// The odd time holds at most the partial strides at the two interval
	// ends; cap it to stay robust against spuriously short coverings.
	if decimal > 2.5 {
		decimal = 2.5
	}
	return (float64(n-1) + decimal) * stepLen
}

// MeanHeading returns the circular mean of the compass readings.
func MeanHeading(samples []sensors.Sample) float64 {
	var c stats.Circular
	for _, s := range samples {
		c.Add(s.Compass)
	}
	return c.Mean()
}

// HeadingEstimator recovers the offset between compass readings and the
// true motion direction (phone placement plus device bias), in the
// spirit of Zee's placement-independent orientation estimation. The
// crowdsourcing pipeline feeds it (compass mean, map bearing) pairs from
// high-confidence legs; Correct then maps raw compass means to motion
// directions.
type HeadingEstimator struct {
	sum stats.Circular
}

// Observe incorporates one calibration pair: the circular-mean compass
// reading over a leg and the map bearing the leg is believed to follow.
func (h *HeadingEstimator) Observe(compassMean, mapBearing float64) {
	h.sum.Add(geom.AngleDiff(compassMean, mapBearing))
}

// Calibrated reports whether at least one observation has been made.
func (h *HeadingEstimator) Calibrated() bool { return h.sum.N() > 0 }

// Offset returns the current placement-offset estimate in degrees.
func (h *HeadingEstimator) Offset() float64 { return h.sum.Mean() }

// Correct converts a raw compass mean into a motion-direction estimate
// by subtracting the learned offset. Uncalibrated estimators return the
// input unchanged.
func (h *HeadingEstimator) Correct(compassMean float64) float64 {
	if !h.Calibrated() {
		return geom.NormalizeDeg(compassMean)
	}
	return geom.NormalizeDeg(compassMean - h.Offset())
}

// RLM is a relative location measurement over one localization
// interval: the motion direction in degrees and the offset in meters
// (paper Sec. IV-B1).
type RLM struct {
	Dir float64 `json:"dir"`
	Off float64 `json:"off"`
}

// Mirror returns the RLM for the reverse traversal: direction plus 180
// degrees, same offset (the paper's mutual-reachability reassembly).
func (r RLM) Mirror() RLM {
	return RLM{Dir: geom.MirrorBearing(r.Dir), Off: r.Off}
}

// Extract computes the RLM for one localization interval [t0, t1] from
// its IMU samples: the direction is the placement-corrected circular
// mean of the compass, the offset comes from Continuous Step Counting.
// ok is false when the user was not walking during the interval.
func Extract(cfg Config, samples []sensors.Sample, t0, t1, stepLen float64,
	est *HeadingEstimator) (rlm RLM, ok bool) {

	if !IsWalking(cfg, samples) {
		return RLM{}, false
	}
	steps := DetectSteps(cfg, samples)
	if len(steps) == 0 {
		return RLM{}, false
	}
	var dir float64
	if cfg.UseGyro {
		dir = MeanFusedHeading(samples)
	} else {
		dir = MeanHeading(samples)
	}
	if est != nil {
		dir = est.Correct(dir)
	}
	return RLM{Dir: dir, Off: OffsetCSC(steps, t0, t1, stepLen)}, true
}
