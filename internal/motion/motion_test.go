package motion

import (
	"math"
	"testing"
	"testing/quick"

	"moloc/internal/geom"
	"moloc/internal/sensors"
	"moloc/internal/stats"
)

func mustGen(t *testing.T) *sensors.Generator {
	t.Helper()
	g, err := sensors.NewGenerator(sensors.NewParams())
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	return g
}

// walkSamples generates a clean walking stream at the given frequency.
func walkSamples(t *testing.T, duration, stepFreq float64, seed int64) []sensors.Sample {
	t.Helper()
	g := mustGen(t)
	rng := stats.NewRNG(seed)
	dev := sensors.Device{}
	s, _ := g.Walk(nil, 0, duration, stepFreq, 90, dev, 0, rng)
	return s
}

func TestConfigValidate(t *testing.T) {
	if err := NewConfig().Validate(); err != nil {
		t.Errorf("defaults should validate: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.MinPeakSep = 0 },
		func(c *Config) { c.WalkStd = -1 },
		func(c *Config) { c.StepLenSlope = 0 },
	}
	for i, mutate := range bad {
		c := NewConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestStepLength(t *testing.T) {
	cfg := NewConfig()
	// A 1.75 m, 70 kg walker: 0.41*1.75 + 0.02 = 0.7375.
	if got := StepLength(cfg, 1.75, 70); math.Abs(got-0.7375) > 1e-9 {
		t.Errorf("StepLength = %v, want 0.7375", got)
	}
	// Taller walkers take longer steps, heavier slightly shorter.
	if StepLength(cfg, 1.9, 70) <= StepLength(cfg, 1.6, 70) {
		t.Error("height should increase step length")
	}
	if StepLength(cfg, 1.75, 95) >= StepLength(cfg, 1.75, 55) {
		t.Error("weight should decrease step length")
	}
}

func TestIsWalking(t *testing.T) {
	cfg := NewConfig()
	walking := walkSamples(t, 3, 1.8, 1)
	if !IsWalking(cfg, walking) {
		t.Error("walking stream not recognized")
	}
	g := mustGen(t)
	standing := g.Stand(nil, 0, 3, 90, sensors.Device{}, stats.NewRNG(1))
	if IsWalking(cfg, standing) {
		t.Error("standing stream misclassified as walking")
	}
	if IsWalking(cfg, nil) {
		t.Error("empty stream is not walking")
	}
}

func TestDetectStepsCount(t *testing.T) {
	cfg := NewConfig()
	// 10 seconds at 1.8 Hz: expect ~18 steps; allow boundary slack.
	steps := DetectSteps(cfg, walkSamples(t, 10, 1.8, 2))
	if len(steps) < 16 || len(steps) > 20 {
		t.Errorf("detected %d steps in 10 s at 1.8 Hz, want ~18", len(steps))
	}
	// Fig. 4 scenario: ~5.5 s at 1.8 Hz shows about 10 steps.
	steps = DetectSteps(cfg, walkSamples(t, 5.5, 1.8, 3))
	if len(steps) < 8 || len(steps) > 11 {
		t.Errorf("detected %d steps, want ~10 (Fig. 4)", len(steps))
	}
}

func TestDetectStepsMonotoneTimes(t *testing.T) {
	cfg := NewConfig()
	steps := DetectSteps(cfg, walkSamples(t, 10, 2.0, 4))
	for i := 1; i < len(steps); i++ {
		if steps[i] <= steps[i-1] {
			t.Fatal("step times must increase")
		}
		if steps[i]-steps[i-1] < cfg.MinPeakSep {
			t.Fatalf("steps %v and %v violate MinPeakSep", steps[i-1], steps[i])
		}
	}
}

func TestDetectStepsEmptyAndStanding(t *testing.T) {
	cfg := NewConfig()
	if got := DetectSteps(cfg, nil); got != nil {
		t.Error("no samples, no steps")
	}
	g := mustGen(t)
	standing := g.Stand(nil, 0, 5, 0, sensors.Device{}, stats.NewRNG(1))
	if got := DetectSteps(cfg, standing); len(got) > 2 {
		t.Errorf("standing produced %d spurious steps", len(got))
	}
}

func TestOffsetDSCvsCSC(t *testing.T) {
	cfg := NewConfig()
	const (
		stepLen  = 0.75
		stepFreq = 1.8
		duration = 3.0
	)
	trueDist := stepLen * stepFreq * duration // 4.05 m
	var dscErr, cscErr stats.Online
	for seed := int64(0); seed < 40; seed++ {
		samples := walkSamples(t, duration, stepFreq, seed)
		steps := DetectSteps(cfg, samples)
		if len(steps) == 0 {
			t.Fatalf("seed %d: no steps", seed)
		}
		dscErr.Add(math.Abs(OffsetDSC(steps, stepLen) - trueDist))
		cscErr.Add(math.Abs(OffsetCSC(steps, 0, duration, stepLen) - trueDist))
	}
	// CSC recovers the odd time; its mean error must beat DSC's.
	if cscErr.Mean() >= dscErr.Mean() {
		t.Errorf("CSC error %.3f not better than DSC %.3f", cscErr.Mean(), dscErr.Mean())
	}
	// And it should be small in absolute terms (paper: median 0.13 m).
	if cscErr.Mean() > 0.4 {
		t.Errorf("CSC mean error %.3f m too large", cscErr.Mean())
	}
}

func TestOffsetCSCEdgeCases(t *testing.T) {
	if got := OffsetCSC(nil, 0, 3, 0.75); got != 0 {
		t.Errorf("no steps: %v, want 0", got)
	}
	if got := OffsetCSC([]float64{1.5}, 0, 3, 0.75); got != 0.75 {
		t.Errorf("single step: %v, want one step length", got)
	}
	// Degenerate: identical step times fall back to DSC.
	if got := OffsetCSC([]float64{1, 1}, 0, 3, 0.75); got != 1.5 {
		t.Errorf("degenerate covering: %v, want 1.5", got)
	}
	// Decimal cap: two close steps in a long interval must not explode.
	got := OffsetCSC([]float64{1.0, 1.3}, 0, 30, 0.75)
	if got > (1+2.5)*0.75+1e-9 {
		t.Errorf("decimal cap violated: %v", got)
	}
}

func TestOffsetCSCUnbiasedOnIdealGait(t *testing.T) {
	// Perfectly periodic steps: CSC should telescope to interval/period.
	stepLen := 0.7
	var steps []float64
	for i := 0; i < 6; i++ {
		steps = append(steps, 0.25+float64(i)*0.5) // period 0.5 s
	}
	got := OffsetCSC(steps, 0, 3, stepLen)
	want := 6.0 * stepLen // 3 s / 0.5 s = 6 strides
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("CSC = %v, want %v", got, want)
	}
}

func TestMeanHeading(t *testing.T) {
	samples := []sensors.Sample{
		{Compass: 358}, {Compass: 2}, {Compass: 0},
	}
	got := MeanHeading(samples)
	if geom.AbsAngleDiff(got, 0) > 1e-9 {
		t.Errorf("MeanHeading = %v, want 0", got)
	}
}

func TestHeadingEstimator(t *testing.T) {
	var h HeadingEstimator
	if h.Calibrated() {
		t.Error("fresh estimator should be uncalibrated")
	}
	if got := h.Correct(123); got != 123 {
		t.Errorf("uncalibrated Correct = %v, want input", got)
	}
	// Phone held at +25 degrees: compass reads bearing+25.
	h.Observe(115, 90)
	h.Observe(205, 180)
	h.Observe(24, 0) // wrap case: 24 - 0 vs 360
	if !h.Calibrated() {
		t.Error("estimator should be calibrated")
	}
	if math.Abs(h.Offset()-24.67) > 0.5 {
		t.Errorf("Offset = %v, want ~24.7", h.Offset())
	}
	if got := h.Correct(115); geom.AbsAngleDiff(got, 90) > 1 {
		t.Errorf("Correct(115) = %v, want ~90", got)
	}
}

func TestHeadingEstimatorWrapProperty(t *testing.T) {
	// For any true offset, observing enough exact pairs recovers it.
	f := func(offset float64) bool {
		if math.IsNaN(offset) || math.IsInf(offset, 0) {
			return true
		}
		offset = math.Mod(offset, 180)
		var h HeadingEstimator
		for _, bearing := range []float64{0, 90, 180, 270, 45} {
			h.Observe(geom.NormalizeDeg(bearing+offset), bearing)
		}
		return geom.AbsAngleDiff(h.Offset(), offset) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExtract(t *testing.T) {
	cfg := NewConfig()
	g := mustGen(t)
	rng := stats.NewRNG(11)
	dev := sensors.Device{PlacementOffset: 20, Bias: 5}
	const (
		duration = 3.0
		stepFreq = 1.8
		stepLen  = 0.75
		heading  = 90.0
	)
	samples, _ := g.Walk(nil, 0, duration, stepFreq, heading, dev, 0, rng)

	// Calibrated estimator knowing the 25-degree total offset.
	var h HeadingEstimator
	h.Observe(geom.NormalizeDeg(heading+25), heading)

	rlm, ok := Extract(cfg, samples, 0, duration, stepLen, &h)
	if !ok {
		t.Fatal("Extract failed on a walking stream")
	}
	if geom.AbsAngleDiff(rlm.Dir, heading) > 10 {
		t.Errorf("direction = %v, want ~%v", rlm.Dir, heading)
	}
	trueDist := stepLen * stepFreq * duration
	if math.Abs(rlm.Off-trueDist) > 0.8 {
		t.Errorf("offset = %v, want ~%v", rlm.Off, trueDist)
	}
}

func TestExtractNotWalking(t *testing.T) {
	cfg := NewConfig()
	g := mustGen(t)
	standing := g.Stand(nil, 0, 3, 0, sensors.Device{}, stats.NewRNG(1))
	if _, ok := Extract(cfg, standing, 0, 3, 0.75, nil); ok {
		t.Error("Extract should fail on standing stream")
	}
}

func TestRLMMirror(t *testing.T) {
	r := RLM{Dir: 30, Off: 4.5}
	m := r.Mirror()
	if m.Dir != 210 || m.Off != 4.5 {
		t.Errorf("Mirror = %+v", m)
	}
	if got := m.Mirror(); got != r {
		t.Errorf("double mirror = %+v, want original", got)
	}
}
