package motion

import (
	"math"
	"testing"

	"moloc/internal/geom"
	"moloc/internal/sensors"
	"moloc/internal/stats"
)

func TestHeadingFilterTracksConstantHeading(t *testing.T) {
	g := mustGen(t)
	dev := sensors.Device{GyroBias: 0.2}
	samples, _ := g.Walk(nil, 0, 10, 1.8, 90, dev, 0, stats.NewRNG(1))
	filter := NewHeadingFilter()
	fused := FusedHeadings(filter, samples)
	if len(fused) != len(samples) {
		t.Fatalf("fused length %d != %d", len(fused), len(samples))
	}
	// After settling, the fused heading should hover near the compass
	// consensus (which includes placement/bias/distortion offsets, here
	// the magnetic distortion at heading 90).
	want := MeanHeading(samples)
	var errSum stats.Online
	for _, h := range fused[len(fused)/2:] {
		errSum.Add(geom.AbsAngleDiff(h, want))
	}
	if errSum.Mean() > 6 {
		t.Errorf("fused heading wanders %.1f deg from compass consensus", errSum.Mean())
	}
}

func TestHeadingFilterSmootherThanCompass(t *testing.T) {
	// The fused per-sample heading must have lower variance than the raw
	// compass: that is the point of the gyro.
	g := mustGen(t)
	samples, _ := g.Walk(nil, 0, 20, 1.8, 45, sensors.Device{}, 0, stats.NewRNG(3))
	filter := NewHeadingFilter()
	fused := FusedHeadings(filter, samples)

	var rawDev, fusedDev stats.Online
	rawMean := MeanHeading(samples)
	for i, s := range samples {
		if i < len(samples)/4 {
			continue // let the filter settle
		}
		rawDev.Add(geom.AbsAngleDiff(s.Compass, rawMean))
		fusedDev.Add(geom.AbsAngleDiff(fused[i], rawMean))
	}
	if fusedDev.Mean() >= rawDev.Mean() {
		t.Errorf("fused deviation %.2f should be below raw compass %.2f",
			fusedDev.Mean(), rawDev.Mean())
	}
}

func TestHeadingFilterInitialization(t *testing.T) {
	f := NewHeadingFilter()
	h := f.Update(sensors.Sample{T: 0, Compass: 123, Gyro: 0})
	if h != 123 {
		t.Errorf("first update should adopt the compass: %v", h)
	}
	// Negative time deltas (out-of-order samples) must not explode.
	h = f.Update(sensors.Sample{T: -1, Compass: 123, Gyro: 500})
	if math.IsNaN(h) || h < 0 || h >= 360 {
		t.Errorf("filter broke on out-of-order sample: %v", h)
	}
}

func TestHeadingFilterWrap(t *testing.T) {
	// Heading near north: compass samples alternate 359/1; the filter
	// must not average them to 180.
	f := NewHeadingFilter()
	var h float64
	for i := 0; i < 50; i++ {
		c := 359.0
		if i%2 == 1 {
			c = 1.0
		}
		h = f.Update(sensors.Sample{T: float64(i) * 0.1, Compass: c, Gyro: 0})
	}
	if geom.AbsAngleDiff(h, 0) > 5 {
		t.Errorf("filter lost the wrap: %v", h)
	}
}

func TestMeanFusedHeading(t *testing.T) {
	g := mustGen(t)
	samples, _ := g.Walk(nil, 0, 5, 1.8, 200, sensors.Device{}, 0, stats.NewRNG(5))
	fused := MeanFusedHeading(samples)
	raw := MeanHeading(samples)
	if geom.AbsAngleDiff(fused, raw) > 8 {
		t.Errorf("fused mean %.1f far from raw mean %.1f", fused, raw)
	}
}

func TestExtractWithGyro(t *testing.T) {
	cfg := NewConfig()
	cfg.UseGyro = true
	g := mustGen(t)
	samples, _ := g.Walk(nil, 0, 3, 1.8, 90, sensors.Device{}, 0, stats.NewRNG(7))
	rlm, ok := Extract(cfg, samples, 0, 3, 0.75, nil)
	if !ok {
		t.Fatal("gyro-fused extraction failed on a walking stream")
	}
	// Direction includes the environment's magnetic distortion at 90
	// degrees; allow a wide band but require sanity.
	if geom.AbsAngleDiff(rlm.Dir, 90) > 25 {
		t.Errorf("fused direction = %v, want ~90", rlm.Dir)
	}
	if rlm.Off < 2 || rlm.Off > 6 {
		t.Errorf("offset = %v, want ~4", rlm.Off)
	}
}
