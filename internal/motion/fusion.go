package motion

import (
	"math"

	"moloc/internal/geom"
	"moloc/internal/sensors"
	"moloc/internal/stats"
)

// HeadingFilter fuses compass and gyroscope readings into a heading
// track, the paper's named future-work direction ("highly accurate
// direction estimation by using gyroscope and advanced filtering
// techniques such as the Kalman filter", Sec. IV-B2). It is a
// one-dimensional Kalman filter over the heading: the gyroscope
// propagates the state between samples (with growing variance), the
// compass corrects it (with its own variance). The constant gyro bias
// is estimated as a second state from the innovation sequence.
type HeadingFilter struct {
	// CompassVar is the compass measurement variance, degrees^2.
	CompassVar float64
	// GyroVar is the angular-rate process variance, (degrees/second)^2.
	GyroVar float64
	// BiasGain is the learning rate for the gyro-bias estimate.
	BiasGain float64

	initialized bool
	heading     float64 // fused heading estimate, degrees
	variance    float64 // heading estimate variance
	bias        float64 // gyro bias estimate, degrees/second
	lastT       float64
}

// NewHeadingFilter returns a filter tuned for the default sensor
// parameters (compass sigma ~8 degrees, gyro sigma ~1.5 degrees/s).
func NewHeadingFilter() *HeadingFilter {
	return &HeadingFilter{
		CompassVar: 64, // (8 deg)^2
		GyroVar:    4,  // generous process noise absorbs sway
		BiasGain:   0.02,
	}
}

// Update incorporates one IMU sample and returns the fused heading in
// degrees [0, 360).
func (f *HeadingFilter) Update(s sensors.Sample) float64 {
	if !f.initialized {
		f.initialized = true
		f.heading = geom.NormalizeDeg(s.Compass)
		f.variance = f.CompassVar
		f.lastT = s.T
		return f.heading
	}
	dt := s.T - f.lastT
	f.lastT = s.T
	if dt < 0 {
		dt = 0
	}

	// Predict: integrate the bias-corrected angular rate.
	f.heading = geom.NormalizeDeg(f.heading + (s.Gyro-f.bias)*dt)
	f.variance += f.GyroVar * dt * dt

	// Correct with the compass measurement.
	innovation := geom.AngleDiff(s.Compass, f.heading)
	gain := f.variance / (f.variance + f.CompassVar)
	f.heading = geom.NormalizeDeg(f.heading + gain*innovation)
	f.variance *= 1 - gain

	// A persistent innovation trend indicates gyro bias; adapt slowly.
	f.bias -= f.BiasGain * gain * innovation / math.Max(dt, 1e-3) * dt
	return f.heading
}

// FusedHeadings runs the filter over a sample window and returns the
// fused heading per sample.
func FusedHeadings(filter *HeadingFilter, samples []sensors.Sample) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = filter.Update(s)
	}
	return out
}

// MeanFusedHeading returns the circular mean of the gyro-fused heading
// track over a sample window, the drop-in alternative to MeanHeading
// when Config.UseGyro is set.
func MeanFusedHeading(samples []sensors.Sample) float64 {
	filter := NewHeadingFilter()
	var c stats.Circular
	for _, s := range samples {
		c.Add(filter.Update(s))
	}
	return c.Mean()
}
