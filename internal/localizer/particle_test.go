package localizer

import (
	"math"
	"testing"

	"moloc/internal/fingerprint"
	"moloc/internal/floorplan"
	"moloc/internal/geom"
	"moloc/internal/motion"
)

// particleFixture builds a clean synthetic radio map over the office
// hall: each location's Gaussian is centered on a distinct ramp so the
// likelihood field is unambiguous.
func particleFixture(t *testing.T) (*floorplan.Plan, *fingerprint.GaussianDB) {
	t.Helper()
	plan := floorplan.OfficeHall()
	samples := make([][]fingerprint.Fingerprint, plan.NumLocs())
	for i := range samples {
		pos := plan.LocPos(i + 1)
		// Two synthetic "APs": RSS proportional to coordinates, plus a
		// couple of jittered samples to give the Gaussians width.
		base := fingerprint.Fingerprint{-30 - pos.X, -30 - pos.Y}
		samples[i] = []fingerprint.Fingerprint{
			base,
			{base[0] + 1, base[1] - 1},
			{base[0] - 1, base[1] + 1},
		}
	}
	gdb, err := fingerprint.NewGaussianDB(2, samples)
	if err != nil {
		t.Fatal(err)
	}
	return plan, gdb
}

func fpAt(plan *floorplan.Plan, loc int) fingerprint.Fingerprint {
	pos := plan.LocPos(loc)
	return fingerprint.Fingerprint{-30 - pos.X, -30 - pos.Y}
}

func TestParticleConfigValidate(t *testing.T) {
	if err := NewParticleConfig().Validate(); err != nil {
		t.Errorf("defaults: %v", err)
	}
	bad := []func(*ParticleConfig){
		func(c *ParticleConfig) { c.N = 5 },
		func(c *ParticleConfig) { c.PosNoise = -1 },
		func(c *ParticleConfig) { c.ResampleFrac = 0 },
		func(c *ParticleConfig) { c.ResampleFrac = 1.5 },
	}
	for i, mutate := range bad {
		c := NewParticleConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	plan, gdb := particleFixture(t)
	if _, err := NewParticle(plan, gdb, ParticleConfig{}); err == nil {
		t.Error("invalid config should be rejected")
	}
	small, err := fingerprint.NewGaussianDB(2, [][]fingerprint.Fingerprint{{{-1, -2}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewParticle(plan, small, NewParticleConfig()); err == nil {
		t.Error("size mismatch should be rejected")
	}
}

func TestParticleConvergesOnStaticUser(t *testing.T) {
	plan, gdb := particleFixture(t)
	pf, err := NewParticle(plan, gdb, NewParticleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if pf.Name() != "particle" {
		t.Errorf("name = %s", pf.Name())
	}
	// Repeated scans at location 13 should pull the cloud onto it.
	var got int
	for i := 0; i < 5; i++ {
		got = pf.Localize(Observation{FP: fpAt(plan, 13)})
	}
	if got != 13 {
		t.Errorf("converged to %d, want 13", got)
	}
	if pf.MeanPosition().Dist(plan.LocPos(13)) > 2.5 {
		t.Errorf("mean position %v far from location 13 %v",
			pf.MeanPosition(), plan.LocPos(13))
	}
}

func TestParticleTracksMotion(t *testing.T) {
	plan, gdb := particleFixture(t)
	pf, err := NewParticle(plan, gdb, NewParticleConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Settle at location 1, then walk the top aisle east: 1 -> 2 -> 3.
	for i := 0; i < 4; i++ {
		pf.Localize(Observation{FP: fpAt(plan, 1)})
	}
	gtDir, gtOff := floorplan.GroundTruthRLM(plan, 1, 2)
	got := pf.Localize(Observation{
		FP:     fpAt(plan, 2),
		Motion: &motion.RLM{Dir: gtDir, Off: gtOff},
	})
	if got != 2 {
		t.Errorf("after first leg: %d, want 2", got)
	}
	gtDir, gtOff = floorplan.GroundTruthRLM(plan, 2, 3)
	got = pf.Localize(Observation{
		FP:     fpAt(plan, 3),
		Motion: &motion.RLM{Dir: gtDir, Off: gtOff},
	})
	if got != 3 {
		t.Errorf("after second leg: %d, want 3", got)
	}
}

func TestParticleReset(t *testing.T) {
	plan, gdb := particleFixture(t)
	pf, err := NewParticle(plan, gdb, NewParticleConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		pf.Localize(Observation{FP: fpAt(plan, 28)})
	}
	before := pf.MeanPosition()
	pf.Reset()
	after := pf.MeanPosition()
	// A fresh uniform cloud's mean sits near the plan center.
	center := geom.Pt(plan.Width/2, plan.Height/2)
	if after.Dist(center) > 3 {
		t.Errorf("reset cloud mean %v not near center %v", after, center)
	}
	if before.Dist(plan.LocPos(28)) > 3 {
		t.Errorf("pre-reset mean %v should be near location 28", before)
	}
}

func TestParticleDeterministicUnderSeed(t *testing.T) {
	plan, gdb := particleFixture(t)
	run := func() []int {
		pf, err := NewParticle(plan, gdb, NewParticleConfig())
		if err != nil {
			t.Fatal(err)
		}
		var out []int
		for i := 0; i < 4; i++ {
			out = append(out, pf.Localize(Observation{FP: fpAt(plan, 10)}))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("particle filter must be deterministic under a fixed seed")
		}
	}
}

func TestParticleWeightsNormalized(t *testing.T) {
	plan, gdb := particleFixture(t)
	pf, err := NewParticle(plan, gdb, NewParticleConfig())
	if err != nil {
		t.Fatal(err)
	}
	pf.Localize(Observation{FP: fpAt(plan, 5)})
	var sum float64
	for _, w := range pf.w {
		if w < 0 {
			t.Fatal("negative weight")
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("weights sum to %v", sum)
	}
}
