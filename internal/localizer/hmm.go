package localizer

import (
	"fmt"

	"moloc/internal/fingerprint"
	"moloc/internal/floorplan"
)

// HMMConfig parameterizes the accelerometer-assisted hidden-Markov-model
// baseline.
type HMMConfig struct {
	// StayProb is the self-transition probability when the
	// accelerometer reports no walking.
	StayProb float64
	// MoveStayProb is the residual self-transition probability while
	// walking (imperfect step detection).
	MoveStayProb float64
	// LeakProb is the probability mass spread over non-adjacent states,
	// keeping the belief from collapsing to zero on estimation errors.
	LeakProb float64
}

// NewHMMConfig returns reasonable defaults for the baseline.
func NewHMMConfig() HMMConfig {
	return HMMConfig{StayProb: 0.9, MoveStayProb: 0.05, LeakProb: 0.01}
}

// Validate rejects unusable HMM parameters.
func (c HMMConfig) Validate() error {
	for _, p := range []float64{c.StayProb, c.MoveStayProb, c.LeakProb} {
		if p < 0 || p >= 1 {
			return fmt.Errorf("localizer: HMM probabilities must be in [0,1), got %g", p)
		}
	}
	return nil
}

// HMM is the accelerometer-assisted hidden-Markov-model baseline in the
// spirit of Liu et al. [23] (paper Sec. II): states are the reference
// locations, transitions follow the walk graph (gated by whether the
// accelerometer says the user is walking), and emissions come from
// fingerprint dissimilarities. The paper argues this design is "prone
// to initial localization error intrinsic to HMM" — the belief recovers
// slowly from a wrong start — which the convergence experiment
// (Table I ablation) makes measurable.
type HMM struct {
	fdb    *fingerprint.DB
	graph  *floorplan.WalkGraph
	cfg    HMMConfig
	belief []float64 // belief[i] is the probability of location i+1
}

var _ Localizer = (*HMM)(nil)

// NewHMM builds the baseline over a radio map and the walk graph.
func NewHMM(fdb *fingerprint.DB, graph *floorplan.WalkGraph, cfg HMMConfig) (*HMM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if fdb.NumLocs() != graph.NumNodes() {
		return nil, fmt.Errorf("localizer: fingerprint DB has %d locations, graph %d",
			fdb.NumLocs(), graph.NumNodes())
	}
	return &HMM{fdb: fdb, graph: graph, cfg: cfg}, nil
}

// Name implements Localizer.
func (h *HMM) Name() string { return "hmm" }

// Reset implements Localizer: the belief returns to uniform.
func (h *HMM) Reset() { h.belief = nil }

// Localize implements Localizer: one forward-algorithm step (predict by
// the transition model, update by the fingerprint emission) followed by
// a MAP readout.
func (h *HMM) Localize(obs Observation) int {
	n := h.fdb.NumLocs()
	if n == 0 {
		return 0
	}
	if h.belief == nil {
		h.belief = make([]float64, n)
		for i := range h.belief {
			h.belief[i] = 1 / float64(n)
		}
	}

	// Predict: transition depends on whether the accelerometer reported
	// walking during the interval.
	moving := obs.Motion != nil
	next := make([]float64, n)
	for i := 0; i < n; i++ {
		loc := i + 1
		b := h.belief[i]
		if b == 0 {
			continue
		}
		stay := h.cfg.StayProb
		if moving {
			stay = h.cfg.MoveStayProb
		}
		neighbors := h.graph.Neighbors(loc)
		spread := (1 - stay - h.cfg.LeakProb)
		if len(neighbors) == 0 {
			next[i] += b * (stay + spread)
		} else {
			next[i] += b * stay
			per := spread / float64(len(neighbors))
			for _, e := range neighbors {
				next[e.To-1] += b * per
			}
		}
		leakPer := h.cfg.LeakProb / float64(n)
		for j := 0; j < n; j++ {
			next[j] += b * leakPer
		}
	}

	// Update: emission probabilities from fingerprint dissimilarities,
	// the same inverse-dissimilarity weighting as Eq. 4 over all states.
	cands := h.fdb.KNearest(obs.FP, n)
	emit := make([]float64, n)
	for _, c := range cands {
		emit[c.Loc-1] = c.Prob
	}
	var norm float64
	for i := range next {
		next[i] *= emit[i]
		norm += next[i]
	}
	if norm <= 0 {
		// Degenerate update; keep the prediction.
		norm = 0
		for i := range next {
			norm += next[i]
		}
		if norm <= 0 {
			return h.fdb.Nearest(obs.FP)
		}
	}
	bestLoc, bestP := 1, -1.0
	for i := range next {
		next[i] /= norm
		if next[i] > bestP {
			bestLoc, bestP = i+1, next[i]
		}
	}
	h.belief = next
	return bestLoc
}
