package localizer

import (
	"fmt"
	"math"

	"moloc/internal/fingerprint"
	"moloc/internal/floorplan"
	"moloc/internal/geom"
	"moloc/internal/stats"
)

// ParticleConfig parameterizes the particle-filter localizer.
type ParticleConfig struct {
	// N is the particle count.
	N int
	// PosNoise is the positional process noise per interval in meters.
	PosNoise float64
	// DirNoiseDeg and OffNoiseFrac describe the motion-model noise: the
	// RLM direction jitter in degrees and the relative offset jitter.
	DirNoiseDeg  float64
	OffNoiseFrac float64
	// ResampleFrac triggers systematic resampling when the effective
	// sample size falls below this fraction of N.
	ResampleFrac float64
	// Seed drives the filter's internal randomness.
	Seed int64
}

// NewParticleConfig returns defaults: 500 particles, noise matched to
// the motion database's typical spreads.
func NewParticleConfig() ParticleConfig {
	return ParticleConfig{
		N:            500,
		PosNoise:     0.5,
		DirNoiseDeg:  8,
		OffNoiseFrac: 0.05,
		ResampleFrac: 0.5,
		Seed:         1,
	}
}

// Validate rejects unusable particle-filter parameters.
func (c ParticleConfig) Validate() error {
	if c.N < 10 {
		return fmt.Errorf("localizer: need at least 10 particles, got %d", c.N)
	}
	if c.PosNoise < 0 || c.DirNoiseDeg < 0 || c.OffNoiseFrac < 0 {
		return fmt.Errorf("localizer: negative particle noise")
	}
	if c.ResampleFrac <= 0 || c.ResampleFrac > 1 {
		return fmt.Errorf("localizer: ResampleFrac must be in (0,1], got %g", c.ResampleFrac)
	}
	return nil
}

// Particle is the continuous-space Monte-Carlo localizer the paper
// implicitly trades away for energy efficiency ("we make a compromise
// on the delicacy of the localization algorithm"): particles carry
// continuous positions, the motion model translates them by the RLM
// with noise (rejecting moves through walls), and the Gaussian radio
// map weighs them. It is substantially more expensive per update than
// MoLoc's k-candidate evaluation; the abl-particle experiment
// quantifies the accuracy/compute trade-off.
type Particle struct {
	plan *floorplan.Plan
	gdb  *fingerprint.GaussianDB
	cfg  ParticleConfig
	rng  *stats.RNG

	pos  []geom.Point
	w    []float64
	init bool
}

var _ Localizer = (*Particle)(nil)

// NewParticle builds the particle filter over a plan and its Gaussian
// radio map.
func NewParticle(plan *floorplan.Plan, gdb *fingerprint.GaussianDB,
	cfg ParticleConfig) (*Particle, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if plan.NumLocs() != gdb.NumLocs() {
		return nil, fmt.Errorf("localizer: plan has %d locations, radio map %d",
			plan.NumLocs(), gdb.NumLocs())
	}
	p := &Particle{plan: plan, gdb: gdb, cfg: cfg}
	p.Reset()
	return p, nil
}

// Name implements Localizer.
func (p *Particle) Name() string { return "particle" }

// Reset implements Localizer: particles return to a uniform spread.
func (p *Particle) Reset() {
	p.rng = stats.NewRNG(p.cfg.Seed)
	p.pos = make([]geom.Point, p.cfg.N)
	p.w = make([]float64, p.cfg.N)
	for i := range p.pos {
		p.pos[i] = geom.Pt(
			p.rng.Uniform(0, p.plan.Width),
			p.rng.Uniform(0, p.plan.Height))
		p.w[i] = 1 / float64(p.cfg.N)
	}
	p.init = true
}

// Localize implements Localizer: predict by the motion model, weigh by
// the fingerprint likelihood, resample when degenerate, and read out
// the reference location nearest the weighted mean.
func (p *Particle) Localize(obs Observation) int {
	if !p.init {
		p.Reset()
	}
	// Predict.
	for i := range p.pos {
		next := p.pos[i]
		if obs.Motion != nil {
			dir := obs.Motion.Dir + p.rng.Norm(0, p.cfg.DirNoiseDeg)
			off := obs.Motion.Off * (1 + p.rng.Norm(0, p.cfg.OffNoiseFrac))
			next = next.Add(geom.FromBearing(dir, off))
		}
		next = next.Add(geom.Vec{
			DX: p.rng.Norm(0, p.cfg.PosNoise),
			DY: p.rng.Norm(0, p.cfg.PosNoise),
		})
		next = p.clamp(next)
		// Walls block walking: a particle that would cross one stays put
		// and loses weight (its hypothesis contradicts the motion).
		if obs.Motion != nil && !p.plan.Walkable(p.pos[i], next) {
			p.w[i] *= 0.1
		} else {
			p.pos[i] = next
		}
	}

	// Update: log-likelihoods, shifted for stability.
	logw := make([]float64, len(p.pos))
	maxLW := math.Inf(-1)
	for i, pos := range p.pos {
		loc := p.plan.NearestLoc(pos)
		lw := p.gdb.LogLikelihood(loc, obs.FP) + math.Log(math.Max(p.w[i], 1e-300))
		logw[i] = lw
		if lw > maxLW {
			maxLW = lw
		}
	}
	var norm float64
	for i := range logw {
		p.w[i] = math.Exp(logw[i] - maxLW)
		norm += p.w[i]
	}
	if norm <= 0 {
		p.Reset()
		return p.plan.NearestLoc(p.mean())
	}
	for i := range p.w {
		p.w[i] /= norm
	}

	// Resample when the effective sample size collapses.
	if p.ess() < p.cfg.ResampleFrac*float64(p.cfg.N) {
		p.resample()
	}
	return p.plan.NearestLoc(p.mean())
}

// mean returns the weighted mean position.
func (p *Particle) mean() geom.Point {
	var x, y float64
	for i, pos := range p.pos {
		x += pos.X * p.w[i]
		y += pos.Y * p.w[i]
	}
	return geom.Pt(x, y)
}

// ess returns the effective sample size 1/sum(w^2).
func (p *Particle) ess() float64 {
	var s float64
	for _, w := range p.w {
		s += w * w
	}
	if s == 0 {
		return 0
	}
	return 1 / s
}

// resample draws a fresh particle set with systematic resampling.
func (p *Particle) resample() {
	n := len(p.pos)
	newPos := make([]geom.Point, n)
	step := 1 / float64(n)
	u := p.rng.Uniform(0, step)
	var cum float64
	j := 0
	for i := 0; i < n; i++ {
		target := u + float64(i)*step
		for cum+p.w[j] < target && j < n-1 {
			cum += p.w[j]
			j++
		}
		newPos[i] = p.pos[j]
	}
	p.pos = newPos
	for i := range p.w {
		p.w[i] = step
	}
}

// clamp keeps a particle inside the plan bounds.
func (p *Particle) clamp(pt geom.Point) geom.Point {
	pt.X = math.Max(0, math.Min(pt.X, p.plan.Width))
	pt.Y = math.Max(0, math.Min(pt.Y, p.plan.Height))
	return pt
}

// MeanPosition exposes the continuous position estimate, which the
// reference-location readout quantizes away.
func (p *Particle) MeanPosition() geom.Point { return p.mean() }
