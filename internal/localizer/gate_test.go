package localizer

import (
	"testing"

	"moloc/internal/fingerprint"
	"moloc/internal/motion"
	"moloc/internal/motiondb"
	"moloc/internal/stats"
)

// chainFixture builds a corridor of n locations with distinct
// fingerprints and a motion database that only knows the chain edges
// i <-> i+1: from any single location, exactly its neighbors (and
// itself) are one-hop reachable.
func chainFixture(t *testing.T, n int) (*fingerprint.DB, *motiondb.DB) {
	t.Helper()
	rng := stats.NewRNG(101)
	samples := make([][]fingerprint.Fingerprint, n)
	for i := range samples {
		fp := make(fingerprint.Fingerprint, 4)
		for a := range fp {
			fp[a] = rng.Uniform(-90, -30)
		}
		samples[i] = []fingerprint.Fingerprint{fp}
	}
	fdb, err := fingerprint.NewDB(fingerprint.Euclidean{}, 4, samples)
	if err != nil {
		t.Fatalf("NewDB: %v", err)
	}
	mdb := motiondb.New(n)
	for i := 1; i < n; i++ {
		mdb.Set(i, i+1, motiondb.Entry{MeanDir: 90, StdDir: 8, MeanOff: 5, StdOff: 0.5, N: 20})
	}
	return fdb, mdb
}

// TestGateRestrictsToReachable: with K=1 the prior is a single location
// on the chain, so the gate masks exactly {prev-1, prev, prev+1}. A
// second scan whose fingerprint matches a far-away location must still
// resolve inside the mask — while the ungated localizer teleports.
func TestGateRestrictsToReachable(t *testing.T) {
	fdb, mdb := chainFixture(t, 130)
	cfg := NewConfig()
	cfg.K = 1
	cfg.Gate = true
	gated, err := NewMoLoc(fdb, mdb, cfg)
	if err != nil {
		t.Fatalf("NewMoLoc: %v", err)
	}
	cfg.Gate = false
	ungated, err := NewMoLoc(fdb, mdb, cfg)
	if err != nil {
		t.Fatalf("NewMoLoc: %v", err)
	}

	first := Observation{FP: fdb.At(3)}
	walk := Observation{FP: fdb.At(100), Motion: &motion.RLM{Dir: 90, Off: 5}}

	if got := gated.Localize(first); got != 3 {
		t.Fatalf("first fix = %d, want 3", got)
	}
	if gated.GatedScans() != 0 {
		t.Fatalf("first observation must take the full scan, GatedScans = %d", gated.GatedScans())
	}
	got := gated.Localize(walk)
	if got < 2 || got > 4 {
		t.Errorf("gated fix = %d, want within one hop of 3", got)
	}
	if gated.GatedScans() != 1 {
		t.Errorf("GatedScans = %d after one gated interval, want 1", gated.GatedScans())
	}

	ungated.Localize(first)
	if got := ungated.Localize(walk); got != 100 {
		t.Errorf("ungated fix = %d, want the teleport to 100", got)
	}
}

// TestGateFallbackLadder walks every rung: first observation, interval
// without motion (fingerprint-only degradation), Reset, and a source
// without masked-scan support — each must take the full scan.
func TestGateFallbackLadder(t *testing.T) {
	fdb, mdb := chainFixture(t, 64)
	cfg := NewConfig()
	cfg.Gate = true
	m, err := NewMoLoc(fdb, mdb, cfg)
	if err != nil {
		t.Fatalf("NewMoLoc: %v", err)
	}
	mv := &motion.RLM{Dir: 90, Off: 5}

	m.Localize(Observation{FP: fdb.At(10)}) // first: full
	if m.GatedScans() != 0 {
		t.Fatalf("first observation gated")
	}
	m.Localize(Observation{FP: fdb.At(11)}) // no motion: full
	if m.GatedScans() != 0 {
		t.Fatalf("motionless interval gated")
	}
	m.Localize(Observation{FP: fdb.At(11), Motion: mv}) // gated
	if m.GatedScans() != 1 {
		t.Fatalf("GatedScans = %d, want 1", m.GatedScans())
	}
	m.Reset()
	m.Localize(Observation{FP: fdb.At(10), Motion: mv}) // post-Reset: full
	if m.GatedScans() != 1 {
		t.Fatalf("post-Reset observation gated")
	}

	// A source without CandidatesMaskedAppend never gates, even with
	// motion and a prior.
	bare := bareSource{fdb}
	mb, err := NewMoLoc(bare, mdb, cfg)
	if err != nil {
		t.Fatalf("NewMoLoc(bare): %v", err)
	}
	mb.Localize(Observation{FP: fdb.At(10)})
	mb.Localize(Observation{FP: fdb.At(11), Motion: mv})
	if mb.GatedScans() != 0 {
		t.Errorf("maskless source gated")
	}
}

// bareSource strips the masked-scan (and append) capability off a DB.
type bareSource struct{ db *fingerprint.DB }

func (s bareSource) NumLocs() int { return s.db.NumLocs() }
func (s bareSource) Candidates(f fingerprint.Fingerprint, k int) []fingerprint.Candidate {
	return s.db.Candidates(f, k)
}

// TestGateIdentityWhenUnbinding: over a fully-connected motion
// database the one-hop mask covers every location, so the gated
// localizer must produce fixes and candidate sets bit-identical to the
// ungated one — the gate can only ever remove unreachable locations,
// never perturb the ranking of reachable ones.
func TestGateIdentityWhenUnbinding(t *testing.T) {
	n := 12
	rng := stats.NewRNG(103)
	samples := make([][]fingerprint.Fingerprint, n)
	for i := range samples {
		fp := make(fingerprint.Fingerprint, 4)
		for a := range fp {
			fp[a] = rng.Uniform(-90, -30)
		}
		samples[i] = []fingerprint.Fingerprint{fp}
	}
	fdb, err := fingerprint.NewDB(fingerprint.Euclidean{}, 4, samples)
	if err != nil {
		t.Fatalf("NewDB: %v", err)
	}
	mdb := motiondb.New(n)
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			mdb.Set(i, j, motiondb.Entry{MeanDir: 45, StdDir: 30, MeanOff: 4, StdOff: 1, N: 10})
		}
	}
	cfg := NewConfig()
	cfg.Gate = true
	gated, err := NewMoLoc(fdb, mdb, cfg)
	if err != nil {
		t.Fatalf("NewMoLoc: %v", err)
	}
	cfg.Gate = false
	plain, err := NewMoLoc(fdb, mdb, cfg)
	if err != nil {
		t.Fatalf("NewMoLoc: %v", err)
	}
	for step := 0; step < 40; step++ {
		obs := Observation{FP: make(fingerprint.Fingerprint, 4)}
		for a := range obs.FP {
			obs.FP[a] = rng.Uniform(-90, -30)
		}
		if step%7 != 0 {
			obs.Motion = &motion.RLM{Dir: rng.Uniform(0, 360), Off: rng.Uniform(1, 6)}
		}
		g, p := gated.Localize(obs), plain.Localize(obs)
		if g != p {
			t.Fatalf("step %d: gated fix %d != ungated %d", step, g, p)
		}
		gc, pc := gated.Candidates(), plain.Candidates()
		if len(gc) != len(pc) {
			t.Fatalf("step %d: candidate counts diverge: %d vs %d", step, len(gc), len(pc))
		}
		for i := range gc {
			if gc[i] != pc[i] {
				t.Fatalf("step %d cand %d: %v != %v", step, i, gc[i], pc[i])
			}
		}
	}
	if gated.GatedScans() == 0 {
		t.Fatalf("gate never engaged")
	}
}

// TestGatedZeroAllocs pins the gated steady state — mask build,
// quantized masked scan, fusion — at zero heap allocations.
func TestGatedZeroAllocs(t *testing.T) {
	fdb, mdb := chainFixture(t, 512)
	cfg := NewConfig()
	cfg.Gate = true
	m, err := NewMoLoc(fdb, mdb, cfg)
	if err != nil {
		t.Fatalf("NewMoLoc: %v", err)
	}
	mv := &motion.RLM{Dir: 90, Off: 5}
	obs := Observation{FP: fdb.At(40), Motion: mv}
	m.Localize(Observation{FP: fdb.At(40)})
	m.Localize(obs)
	if m.GatedScans() == 0 {
		t.Fatalf("warm-up did not gate")
	}
	if avg := testing.AllocsPerRun(100, func() {
		m.Localize(obs)
	}); avg != 0 {
		t.Errorf("gated Localize allocates %.1f per run, want 0", avg)
	}
}
