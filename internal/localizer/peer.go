package localizer

import (
	"fmt"

	"moloc/internal/fingerprint"
	"moloc/internal/floorplan"
	"moloc/internal/stats"
)

// PeerConfig parameterizes the peer-assisted baseline.
type PeerConfig struct {
	// K is the per-peer candidate-set size.
	K int
	// RangeSigma is the standard deviation in meters of the pairwise
	// (acoustic) ranging measurements.
	RangeSigma float64
	// Rounds is the number of belief-propagation rounds.
	Rounds int
}

// NewPeerConfig returns defaults matching the published setting:
// acoustic ranging is accurate to a few decimeters.
func NewPeerConfig() PeerConfig {
	return PeerConfig{K: 8, RangeSigma: 0.4, Rounds: 3}
}

// Validate rejects unusable peer configuration.
func (c PeerConfig) Validate() error {
	if c.K < 1 {
		return fmt.Errorf("localizer: peer K must be >= 1, got %d", c.K)
	}
	if c.RangeSigma <= 0 {
		return fmt.Errorf("localizer: RangeSigma must be positive, got %g", c.RangeSigma)
	}
	if c.Rounds < 1 {
		return fmt.Errorf("localizer: need at least one round, got %d", c.Rounds)
	}
	return nil
}

// PeerGroup is one joint localization problem: the fingerprints of a
// set of co-present peers and their pairwise ranging measurements
// (Ranges[i][j] in meters; the diagonal is ignored).
type PeerGroup struct {
	FPs    []fingerprint.Fingerprint
	Ranges [][]float64
}

// PeerAssist is the peer-assisted baseline in the spirit of Liu et
// al. [12] (MobiCom 2012), the work whose limitation motivates MoLoc:
// peers within acoustic-ranging reach constrain each other's location
// candidates, pruning fingerprint twins that would place two peers at
// a distance contradicting their measured range. The paper's critique —
// "peer involvement is sometimes neither available nor desirable" — is
// what MoLoc's self-contained motion assistance removes.
type PeerAssist struct {
	plan *floorplan.Plan
	src  fingerprint.CandidateSource
	cfg  PeerConfig
}

// NewPeerAssist builds the baseline over a plan and candidate source.
func NewPeerAssist(plan *floorplan.Plan, src fingerprint.CandidateSource,
	cfg PeerConfig) (*PeerAssist, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if plan.NumLocs() != src.NumLocs() {
		return nil, fmt.Errorf("localizer: plan has %d locations, source %d",
			plan.NumLocs(), src.NumLocs())
	}
	return &PeerAssist{plan: plan, src: src, cfg: cfg}, nil
}

// LocalizeGroup jointly localizes a peer group with loopy belief
// propagation over each peer's candidate set: a peer's belief in a
// candidate is its fingerprint probability times, for every other peer,
// the probability that some candidate of that peer sits at the measured
// range. It returns one location estimate per peer.
func (pa *PeerAssist) LocalizeGroup(g PeerGroup) ([]int, error) {
	n := len(g.FPs)
	if n == 0 {
		return nil, fmt.Errorf("localizer: empty peer group")
	}
	if len(g.Ranges) != n {
		return nil, fmt.Errorf("localizer: ranges matrix is %dx?, want %dx%d", len(g.Ranges), n, n)
	}
	for i, row := range g.Ranges {
		if len(row) != n {
			return nil, fmt.Errorf("localizer: ranges row %d has %d entries, want %d", i, len(row), n)
		}
	}

	cands := make([][]fingerprint.Candidate, n)
	beliefs := make([][]float64, n)
	for u := range g.FPs {
		cands[u] = pa.src.Candidates(g.FPs[u], pa.cfg.K)
		if len(cands[u]) == 0 {
			return nil, fmt.Errorf("localizer: peer %d produced no candidates", u)
		}
		beliefs[u] = make([]float64, len(cands[u]))
		for i, c := range cands[u] {
			beliefs[u][i] = c.Prob
		}
	}

	for round := 0; round < pa.cfg.Rounds; round++ {
		next := make([][]float64, n)
		for u := range cands {
			next[u] = make([]float64, len(cands[u]))
			var norm float64
			for i, cu := range cands[u] {
				b := cands[u][i].Prob // fingerprint evidence every round
				for v := range cands {
					if v == u {
						continue
					}
					// Message from peer v: how well does some candidate of
					// v explain the measured range to u's candidate i?
					var msg float64
					for j, cv := range cands[v] {
						d := pa.plan.LocDist(cu.Loc, cv.Loc)
						msg += beliefs[v][j] *
							stats.GaussPDF(g.Ranges[u][v], d, pa.cfg.RangeSigma)
					}
					b *= msg + 1e-12
				}
				next[u][i] = b
				norm += b
			}
			if norm > 0 {
				for i := range next[u] {
					next[u][i] /= norm
				}
			} else {
				// Constraints contradicted everything; fall back to the
				// fingerprint probabilities.
				for i, c := range cands[u] {
					next[u][i] = c.Prob
				}
			}
		}
		beliefs = next
	}

	out := make([]int, n)
	for u := range cands {
		best := 0
		for i := range beliefs[u] {
			if beliefs[u][i] > beliefs[u][best] {
				best = i
			}
		}
		out[u] = cands[u][best].Loc
	}
	return out, nil
}
