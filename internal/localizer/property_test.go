package localizer

import (
	"math"
	"testing"
	"testing/quick"

	"moloc/internal/fingerprint"
	"moloc/internal/floorplan"
	"moloc/internal/geom"
	"moloc/internal/motion"
)

// randomObs builds a bounded observation from arbitrary floats.
func randomObs(a, b, d, o float64, withMotion bool) Observation {
	fp := fingerprint.Fingerprint{
		-40 - math.Abs(math.Mod(a, 60)),
		-40 - math.Abs(math.Mod(b, 60)),
	}
	obs := Observation{FP: fp}
	if withMotion {
		obs.Motion = &motion.RLM{
			Dir: geom.NormalizeDeg(d),
			Off: math.Abs(math.Mod(o, 12)),
		}
	}
	return obs
}

// TestMoLocNeverBreaks drives MoLoc with arbitrary observation
// sequences: the estimate stays in range and the retained candidate
// probabilities stay normalized, whatever the inputs.
func TestMoLocNeverBreaks(t *testing.T) {
	fx := newTwinFixture(t)
	f := func(seq [6][4]float64, motionMask uint8) bool {
		m, err := NewMoLoc(fx.fdb, fx.mdb, NewConfig())
		if err != nil {
			t.Fatal(err)
		}
		for i, row := range seq {
			for _, v := range row {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return true
				}
			}
			obs := randomObs(row[0], row[1], row[2], row[3], motionMask&(1<<i) != 0)
			got := m.Localize(obs)
			if got < 1 || got > 3 {
				return false
			}
			var sum float64
			for _, c := range m.Candidates() {
				if c.Prob < -1e-12 || c.Prob > 1+1e-12 {
					return false
				}
				sum += c.Prob
			}
			if math.Abs(sum-1) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestHMMBeliefNormalized drives the HMM with arbitrary sequences and
// checks the belief stays a distribution.
func TestHMMBeliefNormalized(t *testing.T) {
	plan := floorplan.OfficeHall()
	graph := floorplan.BuildWalkGraph(plan, floorplan.OfficeHallAdjDist)
	samples := make([][]fingerprint.Fingerprint, plan.NumLocs())
	for i := range samples {
		samples[i] = []fingerprint.Fingerprint{{-30 - float64(i), -90 + float64(i)}}
	}
	fdb, err := fingerprint.NewDB(fingerprint.Euclidean{}, 2, samples)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seq [5][4]float64, motionMask uint8) bool {
		h, err := NewHMM(fdb, graph, NewHMMConfig())
		if err != nil {
			t.Fatal(err)
		}
		for i, row := range seq {
			for _, v := range row {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return true
				}
			}
			obs := randomObs(row[0], row[1], row[2], row[3], motionMask&(1<<i) != 0)
			got := h.Localize(obs)
			if got < 1 || got > plan.NumLocs() {
				return false
			}
			var sum float64
			for _, p := range h.belief {
				if p < -1e-12 {
					return false
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestK1EqualsNN is the algebraic identity the candidate-k ablation
// relies on: with k = 1 and any motion input, MoLoc's estimate equals
// plain nearest-neighbor matching.
func TestK1EqualsNN(t *testing.T) {
	fx := newTwinFixture(t)
	cfg := NewConfig()
	cfg.K = 1
	f := func(seq [4][4]float64, motionMask uint8) bool {
		m, err := NewMoLoc(fx.fdb, fx.mdb, cfg)
		if err != nil {
			t.Fatal(err)
		}
		nn := NewWiFiNN(fx.fdb)
		for i, row := range seq {
			for _, v := range row {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return true
				}
			}
			obs := randomObs(row[0], row[1], row[2], row[3], motionMask&(1<<i) != 0)
			if m.Localize(obs) != nn.Localize(obs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
