package localizer

import (
	"fmt"
	"math"

	"moloc/internal/fingerprint"
	"moloc/internal/floorplan"
	"moloc/internal/geom"
)

// ModelBasedConfig parameterizes the RSS-modeling baseline.
type ModelBasedConfig struct {
	// Missing is the RSS value marking an undetected AP
	// (rf.NotDetected).
	Missing float64
	// GridStep is the position-search resolution in meters.
	GridStep float64
	// MinAPs is the minimum number of audible APs required for a fix;
	// with fewer, the localizer falls back to the strongest AP's
	// position.
	MinAPs int
}

// NewModelBasedConfig returns defaults.
func NewModelBasedConfig() ModelBasedConfig {
	return ModelBasedConfig{Missing: -100, GridStep: 1, MinAPs: 3}
}

// Validate rejects unusable configuration.
func (c ModelBasedConfig) Validate() error {
	if c.GridStep <= 0 {
		return fmt.Errorf("localizer: grid step must be positive, got %g", c.GridStep)
	}
	if c.MinAPs < 1 {
		return fmt.Errorf("localizer: MinAPs must be >= 1, got %d", c.MinAPs)
	}
	return nil
}

// ModelBased is the third family of the paper's taxonomy (Sec. II,
// "RSS modeling", e.g. EZ [20] and Lim et al. [21]): instead of a
// fingerprint database it fits a log-distance propagation model per AP
// from the survey data, inverts RSS into distance estimates, and
// trilaterates. The paper's critique — "RSS modeling methods assume
// that the models reflect the truth" — shows up as sensitivity to
// shadowing and walls, which no log-distance line can capture.
type ModelBased struct {
	plan  *floorplan.Plan
	cfg   ModelBasedConfig
	apIdx []int // plan AP index per radio-map column
	// Per-column fitted model: rss = a + b*log10(d).
	a, b []float64
}

var _ Localizer = (*ModelBased)(nil)

// NewModelBased fits per-AP log-distance models by least squares over
// the surveyed radio map (the representative RSS of every reference
// location against its true distance to the AP). apIdx names the plan
// AP behind each radio-map column, so AP-subset deployments work.
func NewModelBased(plan *floorplan.Plan, db *fingerprint.DB, apIdx []int,
	cfg ModelBasedConfig) (*ModelBased, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if db.NumLocs() != plan.NumLocs() {
		return nil, fmt.Errorf("localizer: plan has %d locations, radio map %d",
			plan.NumLocs(), db.NumLocs())
	}
	if db.NumAPs() != len(apIdx) {
		return nil, fmt.Errorf("localizer: radio map has %d APs, index lists %d",
			db.NumAPs(), len(apIdx))
	}
	for _, a := range apIdx {
		if a < 0 || a >= len(plan.APs) {
			return nil, fmt.Errorf("localizer: AP index %d out of range", a)
		}
	}
	m := &ModelBased{
		plan:  plan,
		cfg:   cfg,
		apIdx: apIdx,
		a:     make([]float64, db.NumAPs()),
		b:     make([]float64, db.NumAPs()),
	}
	for ap := range apIdx {
		var sx, sy, sxx, sxy float64
		n := 0
		for loc := 1; loc <= plan.NumLocs(); loc++ {
			rss := db.At(loc)[ap]
			if rss <= cfg.Missing {
				continue
			}
			d := math.Max(plan.APs[apIdx[ap]].Pos.Dist(plan.LocPos(loc)), 0.5)
			x := math.Log10(d)
			sx += x
			sy += rss
			sxx += x * x
			sxy += x * rss
			n++
		}
		if n < 3 {
			return nil, fmt.Errorf("localizer: AP %d audible at only %d locations; cannot fit", ap, n)
		}
		den := float64(n)*sxx - sx*sx
		if den == 0 {
			return nil, fmt.Errorf("localizer: AP %d has degenerate distance spread", ap)
		}
		m.b[ap] = (float64(n)*sxy - sx*sy) / den
		m.a[ap] = (sy - m.b[ap]*sx) / float64(n)
		if m.b[ap] >= 0 {
			// A non-decaying fit means the survey contradicts the model;
			// fall back to a canonical indoor slope so inversion stays
			// sane.
			m.b[ap] = -25
		}
	}
	return m, nil
}

// Name implements Localizer.
func (m *ModelBased) Name() string { return "model-based" }

// Reset implements Localizer. The baseline is stateless.
func (m *ModelBased) Reset() {}

// Model returns AP ap's fitted intercept and slope
// (rss = a + b*log10(d)).
func (m *ModelBased) Model(ap int) (a, b float64) { return m.a[ap], m.b[ap] }

// Localize implements Localizer: invert each audible AP's RSS into a
// distance estimate and grid-search the position minimizing the squared
// range residuals, then report the nearest reference location.
func (m *ModelBased) Localize(obs Observation) int {
	type rangeEst struct {
		pos  geom.Point
		dist float64
	}
	var ranges []rangeEst
	strongest, strongestRSS := -1, math.Inf(-1)
	for ap, rss := range obs.FP {
		if rss <= m.cfg.Missing {
			continue
		}
		if rss > strongestRSS {
			strongest, strongestRSS = ap, rss
		}
		d := math.Pow(10, (rss-m.a[ap])/m.b[ap])
		// Clamp inverted ranges to the plan scale; shadowing can produce
		// absurd extrapolations.
		d = math.Max(0.5, math.Min(d, m.plan.Width+m.plan.Height))
		ranges = append(ranges, rangeEst{pos: m.plan.APs[m.apIdx[ap]].Pos, dist: d})
	}
	if len(ranges) < m.cfg.MinAPs {
		if strongest < 0 {
			return 1
		}
		return m.plan.NearestLoc(m.plan.APs[m.apIdx[strongest]].Pos)
	}

	best := geom.Pt(m.plan.Width/2, m.plan.Height/2)
	bestCost := math.Inf(1)
	for x := 0.0; x <= m.plan.Width; x += m.cfg.GridStep {
		for y := 0.0; y <= m.plan.Height; y += m.cfg.GridStep {
			p := geom.Pt(x, y)
			var cost float64
			for _, re := range ranges {
				r := p.Dist(re.pos) - re.dist
				cost += r * r
			}
			if cost < bestCost {
				bestCost, best = cost, p
			}
		}
	}
	return m.plan.NearestLoc(best)
}
