package localizer

import (
	"testing"

	"moloc/internal/fingerprint"
	"moloc/internal/floorplan"
	"moloc/internal/geom"
	"moloc/internal/motion"
	"moloc/internal/motiondb"
)

// twinFixture builds the Fig. 1 scenario as data: three locations where
// 2 and 3 are fingerprint twins (nearly identical radio-map vectors)
// and 1 is unique. The motion database knows that 2 lies east of 1 and
// 3 lies west of 1, both 4 m away.
type twinFixture struct {
	fdb *fingerprint.DB
	mdb *motiondb.DB
}

func newTwinFixture(t *testing.T) twinFixture {
	t.Helper()
	samples := [][]fingerprint.Fingerprint{
		{{-40, -70}},     // loc 1: unique
		{{-60, -55}},     // loc 2: twin A
		{{-60.5, -55.5}}, // loc 3: twin B, nearly identical to 2
	}
	fdb, err := fingerprint.NewDB(fingerprint.Euclidean{}, 2, samples)
	if err != nil {
		t.Fatalf("NewDB: %v", err)
	}
	mdb := motiondb.New(3)
	mdb.Set(1, 2, motiondb.Entry{MeanDir: 90, StdDir: 6, MeanOff: 4, StdOff: 0.25, N: 20})
	mdb.Set(1, 3, motiondb.Entry{MeanDir: 270, StdDir: 6, MeanOff: 4, StdOff: 0.25, N: 20})
	mdb.Set(2, 3, motiondb.Entry{MeanDir: 270, StdDir: 6, MeanOff: 8, StdOff: 0.4, N: 20})
	return twinFixture{fdb: fdb, mdb: mdb}
}

func newMoLoc(t *testing.T, fx twinFixture, cfg Config) *MoLoc {
	t.Helper()
	m, err := NewMoLoc(fx.fdb, fx.mdb, cfg)
	if err != nil {
		t.Fatalf("NewMoLoc: %v", err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	if err := NewConfig().Validate(); err != nil {
		t.Errorf("defaults should validate: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Beta = -1 },
		func(c *Config) { c.UnreachableProb = -1 },
	}
	for i, mutate := range bad {
		c := NewConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestNewMoLocRejectsMismatch(t *testing.T) {
	fx := newTwinFixture(t)
	if _, err := NewMoLoc(fx.fdb, motiondb.New(5), NewConfig()); err == nil {
		t.Error("location-count mismatch should be rejected")
	}
	badCfg := NewConfig()
	badCfg.K = 0
	if _, err := NewMoLoc(fx.fdb, fx.mdb, badCfg); err == nil {
		t.Error("invalid config should be rejected")
	}
}

func TestWiFiNN(t *testing.T) {
	fx := newTwinFixture(t)
	w := NewWiFiNN(fx.fdb)
	if w.Name() != "wifi-nn" {
		t.Errorf("name = %s", w.Name())
	}
	if got := w.Localize(Observation{FP: fingerprint.Fingerprint{-41, -69}}); got != 1 {
		t.Errorf("NN = %d, want 1", got)
	}
	w.Reset() // stateless no-op must not panic
}

// TestTwinsResolvedByMotion reproduces Fig. 1(b): a correct initial fix
// at location 1, then motion heading east. The new fingerprint is
// deliberately closer to twin 3 (so plain NN errs), but the motion
// database makes MoLoc pick 2.
func TestTwinsResolvedByMotion(t *testing.T) {
	fx := newTwinFixture(t)
	m := newMoLoc(t, fx, NewConfig())

	// Interval 1: clear fingerprint at location 1.
	first := m.Localize(Observation{FP: fingerprint.Fingerprint{-40.5, -69.5}})
	if first != 1 {
		t.Fatalf("initial estimate = %d, want 1", first)
	}

	// Interval 2: ambiguous fingerprint, marginally closer to twin 3.
	ambiguous := fingerprint.Fingerprint{-60.4, -55.4}
	nn := NewWiFiNN(fx.fdb).Localize(Observation{FP: ambiguous})
	if nn != 3 {
		t.Fatalf("fixture broken: NN = %d, want the wrong twin 3", nn)
	}
	got := m.Localize(Observation{
		FP:     ambiguous,
		Motion: &motion.RLM{Dir: 92, Off: 3.9}, // walked east ~4 m
	})
	if got != 2 {
		t.Errorf("MoLoc = %d, want 2 (twin resolved by motion)", got)
	}
}

// TestTwinsResolvedDespiteWrongStart reproduces Fig. 1(c): the initial
// fingerprint is itself ambiguous and the wrong twin is returned, but
// because all candidates are retained, the next motion-matched interval
// still recovers the correct location.
func TestTwinsResolvedDespiteWrongStart(t *testing.T) {
	fx := newTwinFixture(t)
	m := newMoLoc(t, fx, NewConfig())

	// Interval 1: ambiguous between 2 and 3, slightly favoring 3
	// (the wrong one; ground truth is 2).
	first := m.Localize(Observation{FP: fingerprint.Fingerprint{-60.4, -55.4}})
	if first != 3 {
		t.Fatalf("setup: initial estimate = %d, want the wrong twin 3", first)
	}
	// Both twins must be retained as candidates.
	cands := m.Candidates()
	found := map[int]bool{}
	for _, c := range cands {
		found[c.Loc] = true
	}
	if !found[2] || !found[3] {
		t.Fatalf("candidates %v should retain both twins", cands)
	}

	// Interval 2: ground truth is that she was at 2 and now walks west
	// 8 m to 3 (the 2->3 motion signature: dir 270, off 8). Of the
	// retained candidates {2, 3}, only starting from 2 explains that
	// motion, so the ambiguous new fingerprint resolves to 3 — correctly
	// this time, despite the wrong initial estimate.
	got := m.Localize(Observation{
		FP:     fingerprint.Fingerprint{-60.2, -55.3},
		Motion: &motion.RLM{Dir: 268, Off: 8.1},
	})
	if got != 3 {
		t.Errorf("MoLoc = %d, want 3 (transition disambiguates)", got)
	}
	// The surviving belief should now be concentrated on 3.
	cands = m.Candidates()
	if cands[0].Loc != 3 || cands[0].Prob < 0.6 {
		t.Errorf("posterior %v should concentrate on 3", cands)
	}
}

func TestMoLocFallsBackWithoutMotion(t *testing.T) {
	fx := newTwinFixture(t)
	m := newMoLoc(t, fx, NewConfig())
	m.Localize(Observation{FP: fingerprint.Fingerprint{-40, -70}})
	// Second interval without motion: pure fingerprint decision.
	got := m.Localize(Observation{FP: fingerprint.Fingerprint{-60.4, -55.4}})
	if got != 3 {
		t.Errorf("no-motion estimate = %d, want NN result 3", got)
	}
}

func TestMoLocReset(t *testing.T) {
	fx := newTwinFixture(t)
	m := newMoLoc(t, fx, NewConfig())
	m.Localize(Observation{FP: fingerprint.Fingerprint{-40, -70}})
	if len(m.Candidates()) == 0 {
		t.Fatal("candidates expected after a fix")
	}
	m.Reset()
	if len(m.Candidates()) != 0 {
		t.Error("Reset should clear candidates")
	}
}

func TestMoLocMotionContradictsEverything(t *testing.T) {
	fx := newTwinFixture(t)
	cfg := NewConfig()
	cfg.UnreachableProb = 0 // force the all-zero fallback path
	m := newMoLoc(t, fx, cfg)
	m.Localize(Observation{FP: fingerprint.Fingerprint{-40, -70}})
	// Motion that matches no DB entry at all: direction north, offset 20.
	got := m.Localize(Observation{
		FP:     fingerprint.Fingerprint{-60.4, -55.4},
		Motion: &motion.RLM{Dir: 0, Off: 20},
	})
	if got != 3 {
		t.Errorf("contradicted motion should fall back to NN: got %d", got)
	}
}

func TestMoLocPosteriorNormalized(t *testing.T) {
	fx := newTwinFixture(t)
	m := newMoLoc(t, fx, NewConfig())
	m.Localize(Observation{FP: fingerprint.Fingerprint{-40.5, -69.5}})
	m.Localize(Observation{
		FP:     fingerprint.Fingerprint{-60.4, -55.4},
		Motion: &motion.RLM{Dir: 90, Off: 4},
	})
	var sum float64
	for _, c := range m.Candidates() {
		if c.Prob < 0 || c.Prob > 1 {
			t.Errorf("probability %v out of range", c.Prob)
		}
		sum += c.Prob
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("posterior sums to %v", sum)
	}
}

func TestDeadReckoningTracksWithoutFingerprints(t *testing.T) {
	fx := newTwinFixture(t)
	dr, err := NewDeadReckoning(fx.fdb, fx.mdb, NewConfig())
	if err != nil {
		t.Fatal(err)
	}
	if dr.Name() != "dead-reckoning" {
		t.Errorf("name = %s", dr.Name())
	}
	// Initial fix at 1 by fingerprint.
	if got := dr.Localize(Observation{FP: fingerprint.Fingerprint{-40.2, -69.8}}); got != 1 {
		t.Fatalf("initial = %d, want 1", got)
	}
	// Walk east 4 m: must move to 2 even with a junk fingerprint.
	junk := fingerprint.Fingerprint{-60.4, -55.4}
	if got := dr.Localize(Observation{FP: junk, Motion: &motion.RLM{Dir: 90, Off: 4}}); got != 2 {
		t.Errorf("after east walk = %d, want 2", got)
	}
	// Walk west 8 m: 2 -> 3.
	if got := dr.Localize(Observation{FP: junk, Motion: &motion.RLM{Dir: 270, Off: 8}}); got != 3 {
		t.Errorf("after west walk = %d, want 3", got)
	}
	dr.Reset()
	if got := dr.Localize(Observation{FP: fingerprint.Fingerprint{-40.2, -69.8}}); got != 1 {
		t.Errorf("after reset = %d, want fingerprint fix 1", got)
	}
}

func TestHMMBasics(t *testing.T) {
	// Build an HMM over the office hall with a synthetic radio map where
	// each location's fingerprint is unique.
	plan := floorplan.OfficeHall()
	graph := floorplan.BuildWalkGraph(plan, floorplan.OfficeHallAdjDist)
	samples := make([][]fingerprint.Fingerprint, plan.NumLocs())
	for i := range samples {
		// Distinct two-dimensional fingerprints on a line.
		samples[i] = []fingerprint.Fingerprint{{-30 - float64(i)*2, -90 + float64(i)*2}}
	}
	fdb, err := fingerprint.NewDB(fingerprint.Euclidean{}, 2, samples)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHMM(fdb, graph, NewHMMConfig())
	if err != nil {
		t.Fatal(err)
	}
	if h.Name() != "hmm" {
		t.Errorf("name = %s", h.Name())
	}
	// A clear fingerprint for location 5 should win immediately.
	got := h.Localize(Observation{FP: samples[4][0].Clone()})
	if got != 5 {
		t.Errorf("HMM first fix = %d, want 5", got)
	}
	// Walking to a neighbor with its clear fingerprint follows.
	got = h.Localize(Observation{
		FP:     samples[5][0].Clone(),
		Motion: &motion.RLM{Dir: 90, Off: 5.7},
	})
	if got != 6 {
		t.Errorf("HMM tracked = %d, want 6", got)
	}
	h.Reset()
	if h.belief != nil {
		t.Error("Reset should clear the belief")
	}
}

func TestHMMConfigValidate(t *testing.T) {
	if err := NewHMMConfig().Validate(); err != nil {
		t.Errorf("defaults: %v", err)
	}
	c := NewHMMConfig()
	c.StayProb = 1
	if err := c.Validate(); err == nil {
		t.Error("StayProb=1 should fail")
	}
	plan := floorplan.OfficeHall()
	graph := floorplan.BuildWalkGraph(plan, floorplan.OfficeHallAdjDist)
	fx := newTwinFixture(t)
	if _, err := NewHMM(fx.fdb, graph, NewHMMConfig()); err == nil {
		t.Error("size mismatch should be rejected")
	}
}

func TestHMMSlowRecoveryVersusMoLoc(t *testing.T) {
	// The paper's critique: from a wrong initial belief the HMM recovers
	// slowly because the transition model throttles belief movement,
	// while MoLoc's candidate set re-seeds from fingerprints every
	// interval. Construct a wrong-start sequence and count how long each
	// takes to lock on.
	fx := newTwinFixture(t)
	plan := &floorplan.Plan{Width: 20, Height: 10,
		RefLocs: []floorplan.RefLoc{
			{ID: 1, Pos: plan3Pos(0)}, {ID: 2, Pos: plan3Pos(1)}, {ID: 3, Pos: plan3Pos(2)},
		}}
	graph := floorplan.BuildWalkGraph(plan, 100)
	h, err := NewHMM(fx.fdb, graph, NewHMMConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := newMoLoc(t, fx, NewConfig())

	// Ground truth: user sits at 2's twin-ambiguous fingerprint, then
	// walks 2 -> 3 (dir 270, off 8), then stays near 3's fingerprint.
	obs := []Observation{
		{FP: fingerprint.Fingerprint{-60.4, -55.4}},                                        // ambiguous
		{FP: fingerprint.Fingerprint{-60.3, -55.2}, Motion: &motion.RLM{Dir: 270, Off: 8}}, // 2->3
	}
	truth := []int{2, 3}
	molocRight, hmmRight := 0, 0
	for i, o := range obs {
		if m.Localize(o) == truth[i] {
			molocRight++
		}
		if h.Localize(o) == truth[i] {
			hmmRight++
		}
	}
	if molocRight < hmmRight {
		t.Errorf("MoLoc (%d right) should not trail HMM (%d right) on twin recovery",
			molocRight, hmmRight)
	}
}

// plan3Pos places three locations 4 m apart on a line.
func plan3Pos(i int) geom.Point {
	return geom.Pt(4+float64(i)*4, 5)
}
