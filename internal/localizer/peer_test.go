package localizer

import (
	"testing"

	"moloc/internal/fingerprint"
	"moloc/internal/floorplan"
)

// peerFixture builds a plan + radio map where locations 2 and 3 are
// twins (reusing the twin scenario) and positions matter for ranging:
// 1 at (4,5), 2 at (8,5), 3 at (12,5).
func peerFixture(t *testing.T) (*floorplan.Plan, *fingerprint.DB) {
	t.Helper()
	plan := &floorplan.Plan{Width: 20, Height: 10, Name: "peer-line"}
	for i := 0; i < 3; i++ {
		plan.RefLocs = append(plan.RefLocs, floorplan.RefLoc{ID: i + 1, Pos: plan3Pos(i)})
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	samples := [][]fingerprint.Fingerprint{
		{{-40, -70}},     // 1 unique
		{{-60, -55}},     // 2 twin A
		{{-60.5, -55.5}}, // 3 twin B
	}
	fdb, err := fingerprint.NewDB(fingerprint.Euclidean{}, 2, samples)
	if err != nil {
		t.Fatal(err)
	}
	return plan, fdb
}

func TestPeerConfigValidate(t *testing.T) {
	if err := NewPeerConfig().Validate(); err != nil {
		t.Errorf("defaults: %v", err)
	}
	bad := []func(*PeerConfig){
		func(c *PeerConfig) { c.K = 0 },
		func(c *PeerConfig) { c.RangeSigma = 0 },
		func(c *PeerConfig) { c.Rounds = 0 },
	}
	for i, mutate := range bad {
		c := NewPeerConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestPeerAssistInputValidation(t *testing.T) {
	plan, fdb := peerFixture(t)
	pa, err := NewPeerAssist(plan, fdb, NewPeerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pa.LocalizeGroup(PeerGroup{}); err == nil {
		t.Error("empty group should error")
	}
	if _, err := pa.LocalizeGroup(PeerGroup{
		FPs:    []fingerprint.Fingerprint{{-40, -70}},
		Ranges: [][]float64{{0, 1}},
	}); err == nil {
		t.Error("ragged ranges should error")
	}
	small := &floorplan.Plan{Width: 5, Height: 5,
		RefLocs: []floorplan.RefLoc{{ID: 1, Pos: plan3Pos(0)}}}
	if _, err := NewPeerAssist(small, fdb, NewPeerConfig()); err == nil {
		t.Error("size mismatch should be rejected")
	}
}

// TestPeerRangingResolvesTwins is the core behavior: a lone fingerprint
// cannot separate the twins at 8 and 12 m, but a peer at the unique
// location 1 with a 4 m range to the user pins the user to location 2.
func TestPeerRangingResolvesTwins(t *testing.T) {
	plan, fdb := peerFixture(t)
	cfg := NewPeerConfig()
	cfg.K = 3
	pa, err := NewPeerAssist(plan, fdb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ambiguous := fingerprint.Fingerprint{-60.4, -55.4} // NN picks twin 3
	if fdb.Nearest(ambiguous) != 3 {
		t.Fatal("fixture broken: NN should pick the wrong twin")
	}
	got, err := pa.LocalizeGroup(PeerGroup{
		FPs: []fingerprint.Fingerprint{
			{-40.2, -69.8}, // peer at location 1
			ambiguous,      // user, truly at location 2 (4 m from peer)
		},
		Ranges: [][]float64{
			{0, 4.1},
			{4.1, 0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Errorf("peer localized at %d, want 1", got[0])
	}
	if got[1] != 2 {
		t.Errorf("user localized at %d, want 2 (range constraint should beat the twin)", got[1])
	}
}

func TestPeerSingleUserDegeneratesToNN(t *testing.T) {
	plan, fdb := peerFixture(t)
	pa, err := NewPeerAssist(plan, fdb, NewPeerConfig())
	if err != nil {
		t.Fatal(err)
	}
	fp := fingerprint.Fingerprint{-60.4, -55.4}
	got, err := pa.LocalizeGroup(PeerGroup{
		FPs:    []fingerprint.Fingerprint{fp},
		Ranges: [][]float64{{0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != fdb.Nearest(fp) {
		t.Errorf("lone peer = %d, want NN %d", got[0], fdb.Nearest(fp))
	}
}

func TestPeerContradictoryRangesFallBack(t *testing.T) {
	plan, fdb := peerFixture(t)
	pa, err := NewPeerAssist(plan, fdb, NewPeerConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A physically impossible range (100 m in a 20 m plan): the solver
	// must still return in-range estimates.
	got, err := pa.LocalizeGroup(PeerGroup{
		FPs: []fingerprint.Fingerprint{
			{-40.2, -69.8},
			{-60.4, -55.4},
		},
		Ranges: [][]float64{
			{0, 100},
			{100, 0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, loc := range got {
		if loc < 1 || loc > 3 {
			t.Errorf("estimate %d out of range", loc)
		}
	}
}
