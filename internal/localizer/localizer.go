// Package localizer implements the localization engines compared in the
// paper: the WiFi fingerprinting baseline (nearest neighbor, Eq. 2),
// MoLoc's motion-assisted candidate evaluation (Eq. 3–7), an
// accelerometer-assisted HMM baseline in the spirit of Liu et al. [23],
// and a dead-reckoning ablation that uses motion only.
package localizer

import (
	"fmt"

	"moloc/internal/fingerprint"
	"moloc/internal/motion"
	"moloc/internal/motiondb"
)

// Observation is the input to one localization round: the RSS
// fingerprint scanned at the end of the interval and, when the user was
// walking, the relative location measurement extracted from the IMU
// stream. Motion is nil for the first observation of a trace and for
// intervals where the user stood still.
type Observation struct {
	FP     fingerprint.Fingerprint
	Motion *motion.RLM
}

// Localizer estimates a reference-location ID per observation. Reset
// clears per-trace state before a new trace begins.
type Localizer interface {
	Name() string
	Localize(obs Observation) int
	Reset()
}

// WiFiNN is the paper's baseline: nearest-neighbor fingerprinting with
// no memory (Eq. 2).
type WiFiNN struct {
	db *fingerprint.DB
}

var _ Localizer = (*WiFiNN)(nil)

// NewWiFiNN builds the baseline over a radio map.
func NewWiFiNN(db *fingerprint.DB) *WiFiNN { return &WiFiNN{db: db} }

// Name implements Localizer.
func (w *WiFiNN) Name() string { return "wifi-nn" }

// Localize implements Localizer.
func (w *WiFiNN) Localize(obs Observation) int { return w.db.Nearest(obs.FP) }

// Reset implements Localizer. The baseline is stateless.
func (w *WiFiNN) Reset() {}

// Config holds MoLoc's algorithm parameters.
type Config struct {
	// K is the candidate-set size (paper Sec. V-A).
	K int
	// Alpha is the direction discretization interval in degrees for
	// Eq. 5 (20 in the paper, matching the motion DB's direction spread).
	Alpha float64
	// Beta is the offset discretization interval in meters (1 in the
	// paper).
	Beta float64
	// UnreachableProb is the motion-matching probability assigned to a
	// candidate pair with no motion-database entry (not adjacent, or
	// never trained). A small non-zero value keeps the posterior from
	// collapsing when the database is sparse.
	UnreachableProb float64
	// PriorBlend is the weight of the fused posterior in the retained
	// candidate probabilities; the remaining mass comes from the fresh
	// fingerprint probabilities (Eq. 4). 1 retains the pure posterior of
	// Eq. 7. Values below 1 keep the tracker from locking onto a
	// motion-consistent but wrong hypothesis: the grid's translational
	// symmetry means a shifted track matches every subsequent motion
	// measurement, and only fingerprint evidence can break the tie.
	PriorBlend float64
}

// NewConfig returns the defaults: k = 8 candidates (the paper leaves k
// unspecified; the candidate-k ablation favors 8 on the office hall),
// and the paper's discretization intervals alpha = 20 degrees,
// beta = 1 m.
func NewConfig() Config {
	return Config{K: 8, Alpha: 20, Beta: 1, UnreachableProb: 1e-5, PriorBlend: 1}
}

// Validate rejects unusable MoLoc parameters.
func (c Config) Validate() error {
	if c.K < 1 {
		return fmt.Errorf("localizer: K must be >= 1, got %d", c.K)
	}
	if c.Alpha <= 0 || c.Beta <= 0 {
		return fmt.Errorf("localizer: discretization intervals must be positive")
	}
	if c.UnreachableProb < 0 {
		return fmt.Errorf("localizer: UnreachableProb must be >= 0")
	}
	if c.PriorBlend < 0 || c.PriorBlend > 1 {
		return fmt.Errorf("localizer: PriorBlend must be in [0,1], got %g", c.PriorBlend)
	}
	return nil
}

// MoLoc is the paper's motion-assisted localizer. It maintains the set
// of location candidates from the previous interval with their
// posterior probabilities; each new interval combines fingerprint
// probabilities (Eq. 4) with motion-matching probabilities against the
// motion database (Eq. 5–6) into the posterior of Eq. 7.
type MoLoc struct {
	src   fingerprint.CandidateSource
	mdb   *motiondb.DB
	cfg   Config
	prior []fingerprint.Candidate
}

var _ Localizer = (*MoLoc)(nil)

// NewMoLoc builds the localizer over a candidate source (the
// deterministic radio map or the Horus-style Gaussian map — MoLoc is
// agnostic to the fingerprint method) and a trained motion database.
func NewMoLoc(src fingerprint.CandidateSource, mdb *motiondb.DB, cfg Config) (*MoLoc, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if src.NumLocs() != mdb.NumLocs() {
		return nil, fmt.Errorf("localizer: candidate source has %d locations, motion DB %d",
			src.NumLocs(), mdb.NumLocs())
	}
	return &MoLoc{src: src, mdb: mdb, cfg: cfg}, nil
}

// Name implements Localizer.
func (m *MoLoc) Name() string { return "moloc" }

// Reset implements Localizer: it forgets the candidate set, as at the
// start of a new trace.
func (m *MoLoc) Reset() { m.prior = nil }

// Candidates returns the current candidate set with posterior
// probabilities, most probable first. The returned slice must not be
// modified.
func (m *MoLoc) Candidates() []fingerprint.Candidate { return m.prior }

// Localize implements Localizer. The first observation of a trace (or
// one without motion) is resolved by fingerprints alone; subsequent
// observations are fused per Eq. 7 and the posterior is retained as the
// next prior.
func (m *MoLoc) Localize(obs Observation) int {
	cands := m.src.Candidates(obs.FP, m.cfg.K)
	if len(cands) == 0 {
		return 0
	}
	if len(m.prior) == 0 || obs.Motion == nil {
		m.prior = cands
		return best(cands)
	}

	d, o := obs.Motion.Dir, obs.Motion.Off
	posterior := make([]fingerprint.Candidate, len(cands))
	var norm float64
	for i, c := range cands {
		// Eq. 6: total probability of reaching c.Loc from the prior
		// candidate set through motion (d, o).
		var pMotion float64
		for _, prev := range m.prior {
			p := m.cfg.UnreachableProb
			if e, ok := m.mdb.Lookup(prev.Loc, c.Loc); ok {
				p = e.Prob(d, o, m.cfg.Alpha, m.cfg.Beta)
				if p < m.cfg.UnreachableProb {
					p = m.cfg.UnreachableProb
				}
			}
			pMotion += prev.Prob * p
		}
		// Eq. 7: fuse with the fingerprint probability.
		posterior[i] = c
		posterior[i].Prob = c.Prob * pMotion
		norm += posterior[i].Prob
	}
	if norm <= 0 {
		// Motion contradicts every candidate; fall back to fingerprints,
		// as a fresh start.
		m.prior = cands
		return best(cands)
	}
	for i := range posterior {
		posterior[i].Prob /= norm
	}
	// The estimate is the argmax of the pure Eq. 7 posterior.
	ret := best(posterior)
	// The retained prior blends the posterior with the fresh fingerprint
	// probabilities (see Config.PriorBlend).
	for i := range posterior {
		posterior[i].Prob = m.cfg.PriorBlend*posterior[i].Prob +
			(1-m.cfg.PriorBlend)*cands[i].Prob
	}
	sortByProb(posterior) // the evaluation "ranks these candidates"
	m.prior = posterior
	return ret
}

// best returns the location of the highest-probability candidate,
// breaking ties toward lower dissimilarity.
func best(cands []fingerprint.Candidate) int {
	bi := 0
	for i := 1; i < len(cands); i++ {
		if cands[i].Prob > cands[bi].Prob ||
			(cands[i].Prob == cands[bi].Prob && cands[i].Dissim < cands[bi].Dissim) {
			bi = i
		}
	}
	return cands[bi].Loc
}

// DeadReckoning is an ablation localizer: after an initial fingerprint
// fix, it tracks the user with motion matching only, ignoring all
// subsequent fingerprints. It shows why MoLoc fuses both signals: pure
// motion drifts as soon as one transition is misjudged.
type DeadReckoning struct {
	src   fingerprint.CandidateSource
	mdb   *motiondb.DB
	cfg   Config
	prior []fingerprint.Candidate
}

var _ Localizer = (*DeadReckoning)(nil)

// NewDeadReckoning builds the motion-only ablation localizer.
func NewDeadReckoning(src fingerprint.CandidateSource, mdb *motiondb.DB, cfg Config) (*DeadReckoning, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &DeadReckoning{src: src, mdb: mdb, cfg: cfg}, nil
}

// Name implements Localizer.
func (dr *DeadReckoning) Name() string { return "dead-reckoning" }

// Reset implements Localizer.
func (dr *DeadReckoning) Reset() { dr.prior = nil }

// Localize implements Localizer.
func (dr *DeadReckoning) Localize(obs Observation) int {
	if len(dr.prior) == 0 || obs.Motion == nil {
		dr.prior = dr.src.Candidates(obs.FP, dr.cfg.K)
		if len(dr.prior) == 0 {
			return 0
		}
		return best(dr.prior)
	}
	d, o := obs.Motion.Dir, obs.Motion.Off
	n := dr.src.NumLocs()
	posterior := make([]fingerprint.Candidate, 0, n)
	var norm float64
	for loc := 1; loc <= n; loc++ {
		var pMotion float64
		for _, prev := range dr.prior {
			p := dr.cfg.UnreachableProb
			if e, ok := dr.mdb.Lookup(prev.Loc, loc); ok {
				p = e.Prob(d, o, dr.cfg.Alpha, dr.cfg.Beta)
				if p < dr.cfg.UnreachableProb {
					p = dr.cfg.UnreachableProb
				}
			}
			pMotion += prev.Prob * p
		}
		if pMotion > 0 {
			posterior = append(posterior, fingerprint.Candidate{Loc: loc, Prob: pMotion})
			norm += pMotion
		}
	}
	if norm <= 0 || len(posterior) == 0 {
		return best(dr.prior)
	}
	for i := range posterior {
		posterior[i].Prob /= norm
	}
	// Keep the K most probable to bound state like MoLoc does.
	sortByProb(posterior)
	if len(posterior) > dr.cfg.K {
		posterior = posterior[:dr.cfg.K]
		var s float64
		for _, c := range posterior {
			s += c.Prob
		}
		for i := range posterior {
			posterior[i].Prob /= s
		}
	}
	dr.prior = posterior
	return best(dr.prior)
}

// sortByProb sorts candidates by descending probability, breaking ties
// by ascending location ID. Insertion sort suffices: the slice holds at
// most a few dozen candidates.
func sortByProb(cs []fingerprint.Candidate) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0; j-- {
			if cs[j].Prob > cs[j-1].Prob ||
				(cs[j].Prob == cs[j-1].Prob && cs[j].Loc < cs[j-1].Loc) {
				cs[j], cs[j-1] = cs[j-1], cs[j]
			} else {
				break
			}
		}
	}
}

// Horus is the probabilistic-fingerprinting baseline in the style of
// Youssef & Agrawala's Horus (MobiSys 2005), which the paper cites among
// the RSS-fingerprinting systems MoLoc can sit on top of: stateless
// maximum-likelihood location estimation over per-location Gaussians.
type Horus struct {
	gdb *fingerprint.GaussianDB
}

var _ Localizer = (*Horus)(nil)

// NewHorus builds the baseline over a Gaussian radio map.
func NewHorus(gdb *fingerprint.GaussianDB) *Horus { return &Horus{gdb: gdb} }

// Name implements Localizer.
func (h *Horus) Name() string { return "horus" }

// Localize implements Localizer.
func (h *Horus) Localize(obs Observation) int { return h.gdb.MostLikely(obs.FP) }

// Reset implements Localizer. The baseline is stateless.
func (h *Horus) Reset() {}
