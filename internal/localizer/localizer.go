// Package localizer implements the localization engines compared in the
// paper: the WiFi fingerprinting baseline (nearest neighbor, Eq. 2),
// MoLoc's motion-assisted candidate evaluation (Eq. 3–7), an
// accelerometer-assisted HMM baseline in the spirit of Liu et al. [23],
// and a dead-reckoning ablation that uses motion only.
package localizer

import (
	"fmt"

	"moloc/internal/fingerprint"
	"moloc/internal/motion"
	"moloc/internal/motiondb"
)

// Observation is the input to one localization round: the RSS
// fingerprint scanned at the end of the interval and, when the user was
// walking, the relative location measurement extracted from the IMU
// stream. Motion is nil for the first observation of a trace and for
// intervals where the user stood still.
type Observation struct {
	FP     fingerprint.Fingerprint
	Motion *motion.RLM
}

// Localizer estimates a reference-location ID per observation. Reset
// clears per-trace state before a new trace begins.
type Localizer interface {
	Name() string
	Localize(obs Observation) int
	Reset()
}

// WiFiNN is the paper's baseline: nearest-neighbor fingerprinting with
// no memory (Eq. 2).
type WiFiNN struct {
	db *fingerprint.DB
}

var _ Localizer = (*WiFiNN)(nil)

// NewWiFiNN builds the baseline over a radio map.
func NewWiFiNN(db *fingerprint.DB) *WiFiNN { return &WiFiNN{db: db} }

// Name implements Localizer.
func (w *WiFiNN) Name() string { return "wifi-nn" }

// Localize implements Localizer.
func (w *WiFiNN) Localize(obs Observation) int { return w.db.Nearest(obs.FP) }

// Reset implements Localizer. The baseline is stateless.
func (w *WiFiNN) Reset() {}

// Config holds MoLoc's algorithm parameters.
type Config struct {
	// K is the candidate-set size (paper Sec. V-A).
	K int
	// Alpha is the direction discretization interval in degrees for
	// Eq. 5 (20 in the paper, matching the motion DB's direction spread).
	Alpha float64
	// Beta is the offset discretization interval in meters (1 in the
	// paper).
	Beta float64
	// UnreachableProb is the motion-matching probability assigned to a
	// candidate pair with no motion-database entry (not adjacent, or
	// never trained). A small non-zero value keeps the posterior from
	// collapsing when the database is sparse.
	UnreachableProb float64
	// PriorBlend is the weight of the fused posterior in the retained
	// candidate probabilities; the remaining mass comes from the fresh
	// fingerprint probabilities (Eq. 4). 1 retains the pure posterior of
	// Eq. 7. Values below 1 keep the tracker from locking onto a
	// motion-consistent but wrong hypothesis: the grid's translational
	// symmetry means a shifted track matches every subsequent motion
	// measurement, and only fingerprint evidence can break the tie.
	PriorBlend float64
	// Gate enables SRL-KNN-style reachability gating of the candidate
	// scan: when a previous interval's candidate set exists and the
	// interval carries motion, the fingerprint search is restricted to
	// the locations within one motion-DB hop of the prior candidates
	// (plus the candidates themselves), so the motion prior prunes the
	// O(n) radio-map scan before any distance is computed. The gated
	// path falls back to the full scan on Reset, on intervals without
	// motion (fingerprint-only degradation), on an empty mask, and for
	// candidate sources without masked-scan support. Off by default:
	// gating restricts the candidate set, so gated fixes are not
	// guaranteed bit-identical to the ungated reference.
	Gate bool
}

// NewConfig returns the defaults: k = 8 candidates (the paper leaves k
// unspecified; the candidate-k ablation favors 8 on the office hall),
// and the paper's discretization intervals alpha = 20 degrees,
// beta = 1 m.
func NewConfig() Config {
	return Config{K: 8, Alpha: 20, Beta: 1, UnreachableProb: 1e-5, PriorBlend: 1}
}

// Validate rejects unusable MoLoc parameters.
func (c Config) Validate() error {
	if c.K < 1 {
		return fmt.Errorf("localizer: K must be >= 1, got %d", c.K)
	}
	if c.Alpha <= 0 || c.Beta <= 0 {
		return fmt.Errorf("localizer: discretization intervals must be positive")
	}
	if c.UnreachableProb < 0 {
		return fmt.Errorf("localizer: UnreachableProb must be >= 0")
	}
	if c.PriorBlend < 0 || c.PriorBlend > 1 {
		return fmt.Errorf("localizer: PriorBlend must be in [0,1], got %g", c.PriorBlend)
	}
	return nil
}

// MoLoc is the paper's motion-assisted localizer. It maintains the set
// of location candidates from the previous interval with their
// posterior probabilities; each new interval combines fingerprint
// probabilities (Eq. 4) with motion-matching probabilities against the
// motion database (Eq. 5–6) into the posterior of Eq. 7.
//
// NewMoLoc builds the serving configuration: the motion database is
// compiled (motiondb.Compiled) and every per-interval buffer is reused,
// so a steady-state Localize allocates nothing and the Eq. 6 inner
// loop walks a CSR adjacency with table-interpolated probabilities
// instead of hashing into a map and evaluating erf four times per
// pair. NewMoLocReference builds the uncompiled executable
// specification the fast path is tested against.
type MoLoc struct {
	src fingerprint.CandidateSource
	app fingerprint.CandidateAppender       // non-nil when src supports appending
	msk fingerprint.MaskedCandidateAppender // non-nil when gating is on and src supports it
	mdb *motiondb.DB
	cmp *motiondb.Compiled // nil in reference mode
	cfg Config

	// query holds the reachability mask and kernel scratch of the gated
	// scan; nil unless gating is active.
	query      *fingerprint.Query
	gatedScans int

	//moloc:reuse
	prior []fingerprint.Candidate

	// Scratch reused across intervals by the compiled path.
	//moloc:reuse
	candBuf []fingerprint.Candidate
	//moloc:reuse
	postBuf []fingerprint.Candidate
	//moloc:reuse
	pm []float64
	//moloc:reuse
	locIdx []int32 // candidate index by location, -1 when absent
}

var _ Localizer = (*MoLoc)(nil)

// NewMoLoc builds the localizer over a candidate source (the
// deterministic radio map or the Horus-style Gaussian map — MoLoc is
// agnostic to the fingerprint method) and a trained motion database,
// compiled for the serving fast path.
func NewMoLoc(src fingerprint.CandidateSource, mdb *motiondb.DB, cfg Config) (*MoLoc, error) {
	m, err := NewMoLocReference(src, mdb, cfg)
	if err != nil {
		return nil, err
	}
	cmp, err := mdb.Compile(cfg.Alpha, cfg.Beta)
	if err != nil {
		return nil, err
	}
	m.cmp = cmp
	m.app, _ = src.(fingerprint.CandidateAppender)
	m.locIdx = make([]int32, src.NumLocs()+1)
	for i := range m.locIdx {
		m.locIdx[i] = -1
	}
	if cfg.Gate {
		if msk, ok := src.(fingerprint.MaskedCandidateAppender); ok {
			m.msk = msk
			m.query = fingerprint.NewQuery(src.NumLocs())
		}
	}
	return m, nil
}

// NewMoLocReference builds the uncompiled reference localizer: the
// direct transcription of Eq. 3–7 over DB.Lookup and Entry.Prob. It is
// the executable specification the compiled fast path is equivalence-
// tested against, and the "before" side of the benchmarks.
func NewMoLocReference(src fingerprint.CandidateSource, mdb *motiondb.DB, cfg Config) (*MoLoc, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if src.NumLocs() != mdb.NumLocs() {
		return nil, fmt.Errorf("localizer: candidate source has %d locations, motion DB %d",
			src.NumLocs(), mdb.NumLocs())
	}
	return &MoLoc{src: src, mdb: mdb, cfg: cfg}, nil
}

// Name implements Localizer.
func (m *MoLoc) Name() string { return "moloc" }

// UseCompiled swaps the compiled motion index the serving fast path
// walks; the tracker's snapshot acquisition calls it when the server
// publishes a retrained view. Candidate state carries over — posterior
// probabilities remain valid, only the motion model changes — and no
// buffer is reallocated, so the swap itself is allocation-free. The
// view must cover the source's locations and be compiled for this
// localizer's discretization intervals. Reference-mode localizers
// (NewMoLocReference) reject the swap: they are the executable spec of
// the uncompiled path.
func (m *MoLoc) UseCompiled(cmp *motiondb.Compiled) error {
	if m.cmp == nil {
		return fmt.Errorf("localizer: reference-mode MoLoc cannot adopt a compiled view")
	}
	if cmp == nil {
		return fmt.Errorf("localizer: nil compiled view")
	}
	if cmp.NumLocs() != m.src.NumLocs() {
		return fmt.Errorf("localizer: compiled view covers %d locations, source has %d",
			cmp.NumLocs(), m.src.NumLocs())
	}
	if cmp.Alpha() != m.cfg.Alpha || cmp.Beta() != m.cfg.Beta {
		return fmt.Errorf("localizer: view compiled for alpha=%g beta=%g, localizer uses alpha=%g beta=%g",
			cmp.Alpha(), cmp.Beta(), m.cfg.Alpha, m.cfg.Beta)
	}
	m.cmp = cmp
	return nil
}

// Reset implements Localizer: it forgets the candidate set, as at the
// start of a new trace. Scratch buffers are retained.
func (m *MoLoc) Reset() { m.prior = m.prior[:0] }

// Candidates returns the current candidate set with posterior
// probabilities, most probable first. The returned slice must not be
// modified and is only valid until the next Localize or Reset call —
// the serving path reuses its backing buffer. Callers that retain
// candidate sets (e.g. the tracker's fixes) must copy.
//
//moloc:reuse
func (m *MoLoc) Candidates() []fingerprint.Candidate { return m.prior }

// candidates queries the source, through the allocation-free append
// API when the source supports it.
//
//moloc:reuse
func (m *MoLoc) candidates(fp fingerprint.Fingerprint) []fingerprint.Candidate {
	if m.app != nil {
		m.candBuf = m.app.CandidatesAppend(m.candBuf[:0], fp, m.cfg.K)
		return m.candBuf
	}
	return m.src.Candidates(fp, m.cfg.K)
}

// GatedScans reports how many candidate scans ran through the
// reachability gate (rather than the full radio map) since
// construction. Diagnostic only.
func (m *MoLoc) GatedScans() int { return m.gatedScans }

// candidatesGated queries the source through the reachability gate
// when it applies, and through the full scan otherwise. The fallback
// ladder, top to bottom: gating disabled or unsupported by the source;
// no prior candidate set (first interval of a trace, or just after
// Reset); no motion in this interval (covers fingerprint-only
// degradation — the tracker strips Motion); empty mask; masked scan
// refused. Each rung lands on the exact full scan, so gating can only
// narrow the search, never wedge it.
//
//moloc:reuse
func (m *MoLoc) candidatesGated(obs Observation) []fingerprint.Candidate {
	if m.msk == nil || len(m.prior) == 0 || obs.Motion == nil {
		return m.candidates(obs.FP)
	}
	// One-hop reachability from the prior candidate set, plus the
	// candidates themselves (the user may have stayed put).
	q := m.query
	q.ResetMask()
	for _, prev := range m.prior {
		q.MaskLoc(prev.Loc)
		lo, hi := m.cmp.Row(prev.Loc)
		for e := lo; e < hi; e++ {
			q.MaskLoc(m.cmp.Col(e))
		}
	}
	if cands, ok := m.msk.CandidatesMaskedAppend(m.candBuf[:0], obs.FP, m.cfg.K, q); ok {
		m.candBuf = cands
		m.gatedScans++
		return cands
	}
	return m.candidates(obs.FP)
}

// Localize implements Localizer. The first observation of a trace (or
// one without motion) is resolved by fingerprints alone; subsequent
// observations are fused per Eq. 7 and the posterior is retained as the
// next prior.
func (m *MoLoc) Localize(obs Observation) int {
	if m.cmp != nil {
		return m.localizeCompiled(obs)
	}
	return m.localizeReference(obs)
}

// localizeCompiled is the allocation-free serving path. It computes
// the same Eq. 6 sums as the reference by decomposition: every
// (prev, cand) pair contributes at least prior * UnreachableProb, and
// only pairs with a motion-database edge add the table-evaluated
// excess — so instead of probing the database K×K times, it walks the
// compiled adjacency rows of the K prior candidates and scatters into
// the candidates present in this interval's set.
//
//moloc:hotpath
func (m *MoLoc) localizeCompiled(obs Observation) int {
	cands := m.candidatesGated(obs)
	if len(cands) == 0 {
		return 0
	}
	if len(m.prior) == 0 || obs.Motion == nil {
		m.prior = append(m.prior[:0], cands...)
		return best(cands)
	}

	d, o := obs.Motion.Dir, obs.Motion.Off
	u := m.cfg.UnreachableProb
	n := len(m.locIdx) - 1

	// Mark this interval's candidate set for O(1) membership tests.
	for i, c := range cands {
		if c.Loc >= 1 && c.Loc <= n {
			m.locIdx[c.Loc] = int32(i)
		}
	}
	if cap(m.pm) < len(cands) {
		m.pm = make([]float64, len(cands))
	}
	pm := m.pm[:len(cands)]
	for i := range pm {
		pm[i] = 0
	}

	// Eq. 6 over the compiled adjacency: scatter each prior candidate's
	// motion mass into the reachable members of the new candidate set.
	var sumPrior float64
	for _, prev := range m.prior {
		sumPrior += prev.Prob
		lo, hi := m.cmp.Row(prev.Loc)
		for e := lo; e < hi; e++ {
			ci := m.locIdx[m.cmp.Col(e)]
			if ci < 0 {
				continue
			}
			p := m.cmp.EdgeProb(e, d, o)
			if p < u {
				p = u
			}
			pm[ci] += prev.Prob * (p - u)
		}
	}
	for _, c := range cands {
		if c.Loc >= 1 && c.Loc <= n {
			m.locIdx[c.Loc] = -1
		}
	}

	// Eq. 7: fuse with the fingerprint probabilities.
	base := sumPrior * u
	post := append(m.postBuf[:0], cands...)
	m.postBuf = post
	var norm float64
	for i := range post {
		post[i].Prob = cands[i].Prob * (pm[i] + base)
		norm += post[i].Prob
	}
	if norm <= 0 {
		// Motion contradicts every candidate; fall back to fingerprints,
		// as a fresh start.
		m.prior = append(m.prior[:0], cands...)
		return best(cands)
	}
	for i := range post {
		post[i].Prob /= norm
	}
	ret := best(post)
	for i := range post {
		post[i].Prob = m.cfg.PriorBlend*post[i].Prob +
			(1-m.cfg.PriorBlend)*cands[i].Prob
	}
	sortByProb(post)
	m.prior, m.postBuf = post, m.prior
	return ret
}

// localizeReference is the direct transcription of Eq. 3–7: a K×K
// double loop of map lookups and exact Gaussian-interval evaluations.
func (m *MoLoc) localizeReference(obs Observation) int {
	cands := m.src.Candidates(obs.FP, m.cfg.K)
	if len(cands) == 0 {
		return 0
	}
	if len(m.prior) == 0 || obs.Motion == nil {
		m.prior = cands
		return best(cands)
	}

	d, o := obs.Motion.Dir, obs.Motion.Off
	posterior := make([]fingerprint.Candidate, len(cands))
	var norm float64
	for i, c := range cands {
		// Eq. 6: total probability of reaching c.Loc from the prior
		// candidate set through motion (d, o).
		var pMotion float64
		for _, prev := range m.prior {
			p := m.cfg.UnreachableProb
			if e, ok := m.mdb.Lookup(prev.Loc, c.Loc); ok {
				p = e.Prob(d, o, m.cfg.Alpha, m.cfg.Beta)
				if p < m.cfg.UnreachableProb {
					p = m.cfg.UnreachableProb
				}
			}
			pMotion += prev.Prob * p
		}
		// Eq. 7: fuse with the fingerprint probability.
		posterior[i] = c
		posterior[i].Prob = c.Prob * pMotion
		norm += posterior[i].Prob
	}
	if norm <= 0 {
		// Motion contradicts every candidate; fall back to fingerprints,
		// as a fresh start.
		m.prior = cands
		return best(cands)
	}
	for i := range posterior {
		posterior[i].Prob /= norm
	}
	// The estimate is the argmax of the pure Eq. 7 posterior.
	ret := best(posterior)
	// The retained prior blends the posterior with the fresh fingerprint
	// probabilities (see Config.PriorBlend).
	for i := range posterior {
		posterior[i].Prob = m.cfg.PriorBlend*posterior[i].Prob +
			(1-m.cfg.PriorBlend)*cands[i].Prob
	}
	sortByProb(posterior) // the evaluation "ranks these candidates"
	m.prior = posterior
	return ret
}

// best returns the location of the highest-probability candidate,
// breaking ties toward lower dissimilarity.
func best(cands []fingerprint.Candidate) int {
	bi := 0
	for i := 1; i < len(cands); i++ {
		if cands[i].Prob > cands[bi].Prob ||
			(cands[i].Prob == cands[bi].Prob && cands[i].Dissim < cands[bi].Dissim) {
			bi = i
		}
	}
	return cands[bi].Loc
}

// DeadReckoning is an ablation localizer: after an initial fingerprint
// fix, it tracks the user with motion matching only, ignoring all
// subsequent fingerprints. It shows why MoLoc fuses both signals: pure
// motion drifts as soon as one transition is misjudged.
//
// Like MoLoc, NewDeadReckoning compiles the motion database and reuses
// every per-interval buffer; NewDeadReckoningReference keeps the
// O(n·K) transcription as the executable specification.
type DeadReckoning struct {
	src fingerprint.CandidateSource
	app fingerprint.CandidateAppender // non-nil when src supports appending
	mdb *motiondb.DB
	cmp *motiondb.Compiled // nil in reference mode
	cfg Config

	//moloc:reuse
	prior []fingerprint.Candidate

	// Scratch reused across intervals by the compiled path.
	//moloc:reuse
	candBuf []fingerprint.Candidate
	//moloc:reuse
	postBuf []fingerprint.Candidate
	//moloc:reuse
	touchBuf []fingerprint.Candidate
	//moloc:reuse
	pmAll []float64 // accumulated motion mass by location
	//moloc:reuse
	seen []bool // touched marks by location
}

var _ Localizer = (*DeadReckoning)(nil)

// NewDeadReckoning builds the motion-only ablation localizer, compiled
// for the serving fast path.
func NewDeadReckoning(src fingerprint.CandidateSource, mdb *motiondb.DB, cfg Config) (*DeadReckoning, error) {
	dr, err := NewDeadReckoningReference(src, mdb, cfg)
	if err != nil {
		return nil, err
	}
	cmp, err := mdb.Compile(cfg.Alpha, cfg.Beta)
	if err != nil {
		return nil, err
	}
	dr.cmp = cmp
	dr.app, _ = src.(fingerprint.CandidateAppender)
	dr.pmAll = make([]float64, src.NumLocs()+1)
	dr.seen = make([]bool, src.NumLocs()+1)
	return dr, nil
}

// NewDeadReckoningReference builds the uncompiled reference ablation
// localizer, the executable specification for the compiled fast path.
func NewDeadReckoningReference(src fingerprint.CandidateSource, mdb *motiondb.DB, cfg Config) (*DeadReckoning, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &DeadReckoning{src: src, mdb: mdb, cfg: cfg}, nil
}

// Name implements Localizer.
func (dr *DeadReckoning) Name() string { return "dead-reckoning" }

// Reset implements Localizer. Scratch buffers are retained.
func (dr *DeadReckoning) Reset() { dr.prior = dr.prior[:0] }

// candidates queries the source, through the allocation-free append
// API when the source supports it.
//
//moloc:reuse
func (dr *DeadReckoning) candidates(fp fingerprint.Fingerprint) []fingerprint.Candidate {
	if dr.app != nil {
		dr.candBuf = dr.app.CandidatesAppend(dr.candBuf[:0], fp, dr.cfg.K)
		return dr.candBuf
	}
	return dr.src.Candidates(fp, dr.cfg.K)
}

// Localize implements Localizer.
func (dr *DeadReckoning) Localize(obs Observation) int {
	if dr.cmp != nil {
		return dr.localizeCompiled(obs)
	}
	return dr.localizeReference(obs)
}

// localizeCompiled is the allocation-free serving path. The reference
// evaluates Eq. 6 at every one of the n locations; almost all of them
// have no motion-database edge from any prior candidate and share the
// same floor mass sumPrior * UnreachableProb. The fast path therefore
// walks only the compiled adjacency rows of the K prior candidates
// ("touched" locations) and accounts for the untouched remainder in
// closed form, including the top-K cut: a merge of the sorted touched
// candidates with the (id-ascending, equal-mass) untouched stream.
//
//moloc:hotpath
func (dr *DeadReckoning) localizeCompiled(obs Observation) int {
	if len(dr.prior) == 0 || obs.Motion == nil {
		cands := dr.candidates(obs.FP)
		dr.prior = append(dr.prior[:0], cands...)
		if len(dr.prior) == 0 {
			return 0
		}
		return best(dr.prior)
	}
	d, o := obs.Motion.Dir, obs.Motion.Off
	n := dr.src.NumLocs()
	u := dr.cfg.UnreachableProb

	// Scatter motion mass along the prior candidates' adjacency rows.
	touched := dr.touchBuf[:0]
	var sumPrior float64
	for _, prev := range dr.prior {
		sumPrior += prev.Prob
		lo, hi := dr.cmp.Row(prev.Loc)
		for e := lo; e < hi; e++ {
			v := dr.cmp.Col(e)
			if v > n {
				continue // database knows more locations than the source
			}
			p := dr.cmp.EdgeProb(e, d, o)
			if p < u {
				p = u
			}
			if !dr.seen[v] {
				dr.seen[v] = true
				dr.pmAll[v] = 0
				touched = append(touched, fingerprint.Candidate{Loc: v})
			}
			dr.pmAll[v] += prev.Prob * (p - u)
		}
	}
	dr.touchBuf = touched

	// Every untouched location carries exactly the floor mass. Filter
	// the touched set to positive-mass locations in place; a dropped
	// location (possible only when base == 0, so the merge below never
	// consults seen) has its mark cleared here, because the in-place
	// filter and sort scramble the shared backing array.
	base := sumPrior * u
	var norm float64
	kept := 0
	out := touched[:0]
	for _, c := range touched {
		c.Prob = dr.pmAll[c.Loc] + base
		if c.Prob > 0 {
			norm += c.Prob
			out = append(out, c)
		} else {
			dr.seen[c.Loc] = false
		}
	}
	untouched := n - len(touched)
	kept = len(out)
	if base > 0 {
		norm += float64(untouched) * base
		kept += untouched
	}
	if norm <= 0 || kept == 0 {
		for _, c := range out {
			dr.seen[c.Loc] = false
		}
		return best(dr.prior)
	}

	// Top-K cut, reproducing the reference's sort of the full posterior:
	// merge the sorted touched candidates with the untouched stream,
	// which is already ordered (equal probability, ascending ID).
	sortByProb(out)
	post := dr.postBuf[:0]
	ti, uloc := 0, 1
	for len(post) < dr.cfg.K && len(post) < kept {
		nextU := 0
		if base > 0 {
			for uloc <= n && dr.seen[uloc] {
				uloc++
			}
			if uloc <= n {
				nextU = uloc
			}
		}
		takeTouched := ti < len(out) &&
			(nextU == 0 || out[ti].Prob > base ||
				(out[ti].Prob == base && out[ti].Loc < nextU))
		if takeTouched {
			post = append(post, out[ti])
			ti++
		} else {
			post = append(post, fingerprint.Candidate{Loc: nextU, Prob: base})
			uloc++
		}
	}
	for _, c := range out {
		dr.seen[c.Loc] = false
	}

	for i := range post {
		post[i].Prob /= norm
	}
	if kept > dr.cfg.K {
		// The reference renormalizes only when the cut dropped mass.
		var s float64
		for _, c := range post {
			s += c.Prob
		}
		for i := range post {
			post[i].Prob /= s
		}
	}
	dr.prior, dr.postBuf = post, dr.prior
	return best(dr.prior)
}

// localizeReference is the direct transcription: Eq. 6 evaluated at
// every location via map lookups and exact Gaussian intervals.
func (dr *DeadReckoning) localizeReference(obs Observation) int {
	if len(dr.prior) == 0 || obs.Motion == nil {
		dr.prior = dr.src.Candidates(obs.FP, dr.cfg.K)
		if len(dr.prior) == 0 {
			return 0
		}
		return best(dr.prior)
	}
	d, o := obs.Motion.Dir, obs.Motion.Off
	n := dr.src.NumLocs()
	posterior := make([]fingerprint.Candidate, 0, n)
	var norm float64
	for loc := 1; loc <= n; loc++ {
		var pMotion float64
		for _, prev := range dr.prior {
			p := dr.cfg.UnreachableProb
			if e, ok := dr.mdb.Lookup(prev.Loc, loc); ok {
				p = e.Prob(d, o, dr.cfg.Alpha, dr.cfg.Beta)
				if p < dr.cfg.UnreachableProb {
					p = dr.cfg.UnreachableProb
				}
			}
			pMotion += prev.Prob * p
		}
		if pMotion > 0 {
			posterior = append(posterior, fingerprint.Candidate{Loc: loc, Prob: pMotion})
			norm += pMotion
		}
	}
	if norm <= 0 || len(posterior) == 0 {
		return best(dr.prior)
	}
	for i := range posterior {
		posterior[i].Prob /= norm
	}
	// Keep the K most probable to bound state like MoLoc does.
	sortByProb(posterior)
	if len(posterior) > dr.cfg.K {
		posterior = posterior[:dr.cfg.K]
		var s float64
		for _, c := range posterior {
			s += c.Prob
		}
		for i := range posterior {
			posterior[i].Prob /= s
		}
	}
	dr.prior = posterior
	return best(dr.prior)
}

// sortByProb sorts candidates by descending probability, breaking ties
// by ascending location ID. Insertion sort suffices: the slice holds at
// most a few dozen candidates.
func sortByProb(cs []fingerprint.Candidate) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0; j-- {
			if cs[j].Prob > cs[j-1].Prob ||
				(cs[j].Prob == cs[j-1].Prob && cs[j].Loc < cs[j-1].Loc) {
				cs[j], cs[j-1] = cs[j-1], cs[j]
			} else {
				break
			}
		}
	}
}

// Horus is the probabilistic-fingerprinting baseline in the style of
// Youssef & Agrawala's Horus (MobiSys 2005), which the paper cites among
// the RSS-fingerprinting systems MoLoc can sit on top of: stateless
// maximum-likelihood location estimation over per-location Gaussians.
type Horus struct {
	gdb *fingerprint.GaussianDB
}

var _ Localizer = (*Horus)(nil)

// NewHorus builds the baseline over a Gaussian radio map.
func NewHorus(gdb *fingerprint.GaussianDB) *Horus { return &Horus{gdb: gdb} }

// Name implements Localizer.
func (h *Horus) Name() string { return "horus" }

// Localize implements Localizer.
func (h *Horus) Localize(obs Observation) int { return h.gdb.MostLikely(obs.FP) }

// Reset implements Localizer. The baseline is stateless.
func (h *Horus) Reset() {}
