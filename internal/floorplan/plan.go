// Package floorplan models the indoor environments MoLoc is evaluated in:
// walls, obstacles, access points, reference locations, and the walk graph
// of aisles that user motion follows. It replaces the paper's physical
// office-hall deployment (Fig. 5) with a geometric model that the RF and
// sensor simulators consume.
package floorplan

import (
	"fmt"

	"moloc/internal/geom"
)

// AP is a WiFi access point placed in the plan.
type AP struct {
	ID  string     `json:"id"`
	Pos geom.Point `json:"pos"`
	// TxPower is the transmit power in dBm. Zero means "use the RF model
	// default".
	TxPower float64 `json:"tx_power,omitempty"`
}

// RefLoc is a surveyed reference location. IDs are 1-based and contiguous,
// matching the numbering in the paper's Fig. 5.
type RefLoc struct {
	ID  int        `json:"id"`
	Pos geom.Point `json:"pos"`
}

// Plan is a 2-D indoor environment.
type Plan struct {
	Name   string  `json:"name"`
	Width  float64 `json:"width"`  // meters, X extent
	Height float64 `json:"height"` // meters, Y extent

	// Walls are blocking segments: the outer boundary plus interior
	// partitions. They attenuate RF and block walking.
	Walls []geom.Segment `json:"walls"`

	// Obstacles are solid furniture-scale blocks (columns, shelves).
	// They attenuate RF and block walking but less than full walls.
	Obstacles []geom.Rect `json:"obstacles"`

	APs     []AP     `json:"aps"`
	RefLocs []RefLoc `json:"ref_locs"`
}

// Validate checks structural invariants: positive extent, contiguous
// 1-based reference IDs, and all reference locations and APs inside the
// plan bounds.
func (p *Plan) Validate() error {
	if p.Width <= 0 || p.Height <= 0 {
		return fmt.Errorf("floorplan: non-positive extent %gx%g", p.Width, p.Height)
	}
	for i, rl := range p.RefLocs {
		if rl.ID != i+1 {
			return fmt.Errorf("floorplan: reference IDs must be contiguous and 1-based; index %d has ID %d", i, rl.ID)
		}
		if !p.inBounds(rl.Pos) {
			return fmt.Errorf("floorplan: reference %d at %v is out of bounds", rl.ID, rl.Pos)
		}
	}
	for _, ap := range p.APs {
		if ap.ID == "" {
			return fmt.Errorf("floorplan: AP with empty ID")
		}
		if !p.inBounds(ap.Pos) {
			return fmt.Errorf("floorplan: AP %s at %v is out of bounds", ap.ID, ap.Pos)
		}
	}
	return nil
}

func (p *Plan) inBounds(pt geom.Point) bool {
	return pt.X >= 0 && pt.X <= p.Width && pt.Y >= 0 && pt.Y <= p.Height
}

// NumLocs returns the number of reference locations.
func (p *Plan) NumLocs() int { return len(p.RefLocs) }

// LocPos returns the position of the reference location with the given
// 1-based ID. It panics on an unknown ID, which indicates a programming
// error (IDs come from the plan itself).
func (p *Plan) LocPos(id int) geom.Point {
	if id < 1 || id > len(p.RefLocs) {
		panic(fmt.Sprintf("floorplan: unknown reference ID %d", id))
	}
	return p.RefLocs[id-1].Pos
}

// LocDist returns the straight-line distance between two reference
// locations identified by ID.
func (p *Plan) LocDist(i, j int) float64 {
	return p.LocPos(i).Dist(p.LocPos(j))
}

// LocBearing returns the compass bearing from reference i to reference j.
func (p *Plan) LocBearing(i, j int) float64 {
	return p.LocPos(i).BearingTo(p.LocPos(j))
}

// NearestLoc returns the ID of the reference location closest to pt.
func (p *Plan) NearestLoc(pt geom.Point) int {
	best, bestD := 0, -1.0
	for _, rl := range p.RefLocs {
		d := rl.Pos.Dist(pt)
		if bestD < 0 || d < bestD {
			best, bestD = rl.ID, d
		}
	}
	return best
}

// interiorWalls returns the wall segments excluding the outer boundary.
// The boundary never lies between two interior points, so RF wall
// counting skips it for speed and correctness at edge coordinates.
func (p *Plan) interiorWalls() []geom.Segment {
	interior := make([]geom.Segment, 0, len(p.Walls))
	for _, w := range p.Walls {
		if p.isBoundary(w) {
			continue
		}
		interior = append(interior, w)
	}
	return interior
}

func (p *Plan) isBoundary(s geom.Segment) bool {
	onEdge := func(pt geom.Point) bool {
		return pt.X == 0 || pt.X == p.Width || pt.Y == 0 || pt.Y == p.Height
	}
	return onEdge(s.A) && onEdge(s.B) &&
		(s.A.X == s.B.X && (s.A.X == 0 || s.A.X == p.Width) ||
			s.A.Y == s.B.Y && (s.A.Y == 0 || s.A.Y == p.Height))
}

// WallsBetween counts the interior walls and obstacles crossed by the
// straight segment from a to b. The RF multi-wall model uses this count
// to attenuate the path loss.
func (p *Plan) WallsBetween(a, b geom.Point) int {
	seg := geom.Seg(a, b)
	n := 0
	for _, w := range p.interiorWalls() {
		if w.Intersects(seg) {
			n++
		}
	}
	for _, o := range p.Obstacles {
		if o.IntersectsSegment(seg) {
			n++
		}
	}
	return n
}

// LineOfSight reports whether the straight segment from a to b crosses no
// interior wall or obstacle.
func (p *Plan) LineOfSight(a, b geom.Point) bool {
	return p.WallsBetween(a, b) == 0
}

// Walkable reports whether a person can walk in a straight line from a to
// b: the segment must not cross any wall or obstacle. Unlike RF, walking
// is also blocked by the outer boundary.
func (p *Plan) Walkable(a, b geom.Point) bool {
	seg := geom.Seg(a, b)
	for _, w := range p.Walls {
		if p.isBoundary(w) {
			continue // endpoints inside the plan cannot cross the boundary
		}
		if w.Intersects(seg) {
			return false
		}
	}
	for _, o := range p.Obstacles {
		if o.IntersectsSegment(seg) {
			return false
		}
	}
	return true
}
