package floorplan

import (
	"fmt"
	"math"

	"moloc/internal/geom"
)

// OfficeHallAdjDist is the adjacency threshold for the office hall: it
// admits the 5.67 m horizontal and 4 m vertical grid spacings but rejects
// the 6.94 m diagonals, so aisles run along the grid as in Fig. 5.
const OfficeHallAdjDist = 6.0

// OfficeHall reconstructs the paper's experimental environment (Fig. 5):
// a 40.8 m x 16 m office hall with 28 reference locations on a 7x4 grid,
// 6 sparsely placed APs, columns, partition boards, and shelves. Location
// IDs run 1..7 on the top (north) row through 22..28 on the bottom row,
// matching the figure.
func OfficeHall() *Plan {
	p := &Plan{
		Name:   "office-hall",
		Width:  40.8,
		Height: 16,
	}
	p.Walls = boundary(p.Width, p.Height)

	// 7x4 reference grid. Columns are spaced 5.667 m apart starting at
	// x = 3.4; rows sit at y = 14, 10, 6, 2 (top row first, as in Fig. 5).
	rowY := []float64{14, 10, 6, 2}
	for r := 0; r < 4; r++ {
		for c := 0; c < 7; c++ {
			id := r*7 + c + 1
			x := 3.4 + 5.6667*float64(c)
			p.RefLocs = append(p.RefLocs, RefLoc{ID: id, Pos: geom.Pt(x, rowY[r])})
		}
	}

	// Six sparsely placed APs (stars in Fig. 5). Their exact coordinates
	// are not published; what matters for reproducing the paper is the
	// ambiguity structure its evaluation exhibits — specific pairs of
	// highly spaced locations with near-identical fingerprints (its
	// "fingerprint twins", e.g. locations 2 and 15, 10 and 27). A
	// near-symmetric placement produces exactly that: the first four APs
	// are mirror pairs about the hall's vertical center line, so a
	// location and its mirror image receive similar RSS vectors; ap5
	// sits on the symmetry axis (adding signal but little
	// disambiguation) and ap6 breaks the symmetry. The 4/5/6-AP
	// experiment subsets therefore sweep from strong ambiguity to
	// moderate, matching the paper's accuracy trend.
	p.APs = []AP{
		{ID: "ap1", Pos: geom.Pt(5.0, 13.5)},
		{ID: "ap2", Pos: geom.Pt(35.8, 13.5)},
		{ID: "ap3", Pos: geom.Pt(13.0, 2.5)},
		{ID: "ap4", Pos: geom.Pt(27.8, 2.5)},
		{ID: "ap5", Pos: geom.Pt(20.4, 8.5)},
		{ID: "ap6", Pos: geom.Pt(9.5, 7.5)},
	}

	// Columns, shelves, and a partition board. The partition between
	// (13, 8)-(16.5, 8) deliberately severs the direct aisle between
	// locations 10 and 17: they are geographically close but not mutually
	// walkable, the situation the consistency principle warns about.
	p.Obstacles = []geom.Rect{
		geom.RectAt(geom.Pt(12, 12), 0.8, 0.8),   // column
		geom.RectAt(geom.Pt(24, 4), 0.8, 0.8),    // column
		geom.RectAt(geom.Pt(8, 8), 1.5, 0.9),     // shelf
		geom.RectAt(geom.Pt(33, 8), 1.5, 0.9),    // shelf
		geom.RectAt(geom.Pt(28.5, 12), 1.2, 0.8), // desk cluster
	}
	p.Walls = append(p.Walls,
		geom.Seg(geom.Pt(13, 8), geom.Pt(16.5, 8)), // partition board
	)
	return p
}

// Mall builds a larger two-corridor shopping-mall scenario used by the
// mall example: two parallel 70 m corridors of reference locations joined
// by three cross-aisles, with storefront walls between them elsewhere.
func Mall() *Plan {
	p := &Plan{
		Name:   "mall",
		Width:  76,
		Height: 24,
	}
	p.Walls = boundary(p.Width, p.Height)

	// Two corridors at y = 6 and y = 18, 14 locations each, 5 m apart.
	// IDs 1..14 on the north corridor, 15..28 on the south corridor.
	for c := 0; c < 14; c++ {
		x := 5 + 5*float64(c)
		p.RefLocs = append(p.RefLocs, RefLoc{ID: c + 1, Pos: geom.Pt(x, 18)})
	}
	for c := 0; c < 14; c++ {
		x := 5 + 5*float64(c)
		p.RefLocs = append(p.RefLocs, RefLoc{ID: 14 + c + 1, Pos: geom.Pt(x, 6)})
	}
	// Cross-aisle locations joining the corridors at x = 15, 40, 65.
	// IDs 29, 30, 31.
	for i, x := range []float64{15, 40, 65} {
		p.RefLocs = append(p.RefLocs, RefLoc{ID: 29 + i, Pos: geom.Pt(x, 12)})
	}

	// Storefront walls between the corridors, broken at the cross-aisles.
	for _, span := range [][2]float64{{2, 12.5}, {17.5, 37.5}, {42.5, 62.5}, {67.5, 74}} {
		p.Walls = append(p.Walls,
			geom.Seg(geom.Pt(span[0], 12), geom.Pt(span[1], 12)))
	}

	p.APs = []AP{
		{ID: "ap1", Pos: geom.Pt(8, 22)},
		{ID: "ap2", Pos: geom.Pt(30, 20)},
		{ID: "ap3", Pos: geom.Pt(55, 22)},
		{ID: "ap4", Pos: geom.Pt(72, 19)},
		{ID: "ap5", Pos: geom.Pt(12, 2)},
		{ID: "ap6", Pos: geom.Pt(35, 4)},
		{ID: "ap7", Pos: geom.Pt(60, 2)},
		{ID: "ap8", Pos: geom.Pt(40, 12)},
	}
	return p
}

// MallAdjDist is the adjacency threshold for the mall: corridor neighbors
// are 5 m apart and cross-aisle hops are at most 6.1 m.
const MallAdjDist = 6.5

// Museum builds a four-room museum with a central corridor, used by the
// crowdsourcing example. Rooms connect to the corridor through doorways;
// walls otherwise block both walking and (partially) RF.
func Museum() *Plan {
	p := &Plan{
		Name:   "museum",
		Width:  36,
		Height: 20,
	}
	p.Walls = boundary(p.Width, p.Height)

	// Corridor along y = 10 (locations 1..7), rooms above and below.
	for c := 0; c < 7; c++ {
		x := 3 + 5*float64(c)
		p.RefLocs = append(p.RefLocs, RefLoc{ID: c + 1, Pos: geom.Pt(x, 10)})
	}
	// Each room holds two exhibit locations; the one nearer the doorway
	// (x in 7.2..10.2 for the west rooms, 25.2..28.2 for the east rooms)
	// links the room to the corridor through the door gap.
	roomLocs := []geom.Point{
		geom.Pt(4, 16), geom.Pt(9, 15), // room A (IDs 8, 9)
		geom.Pt(26.5, 15), geom.Pt(32, 16), // room B (IDs 10, 11)
		geom.Pt(4, 4), geom.Pt(9, 5), // room C (IDs 12, 13)
		geom.Pt(26.5, 5), geom.Pt(32, 4), // room D (IDs 14, 15)
	}
	for i, pos := range roomLocs {
		p.RefLocs = append(p.RefLocs, RefLoc{ID: 8 + i, Pos: pos})
	}

	// Room walls at y = 13 (north rooms) and y = 7 (south rooms), with
	// doorway gaps near the room entrances, plus dividers between rooms.
	for _, span := range [][2]float64{{1, 7.2}, {10.2, 25.2}, {28.2, 35}} {
		p.Walls = append(p.Walls,
			geom.Seg(geom.Pt(span[0], 13), geom.Pt(span[1], 13)))
	}
	for _, span := range [][2]float64{{1, 7.2}, {10.2, 25.2}, {28.2, 35}} {
		p.Walls = append(p.Walls,
			geom.Seg(geom.Pt(span[0], 7), geom.Pt(span[1], 7)))
	}
	p.Walls = append(p.Walls,
		geom.Seg(geom.Pt(18, 13), geom.Pt(18, 20)), // divider A|B
		geom.Seg(geom.Pt(18, 0), geom.Pt(18, 7)),   // divider C|D
	)

	p.APs = []AP{
		{ID: "ap1", Pos: geom.Pt(3, 18)},
		{ID: "ap2", Pos: geom.Pt(33, 18)},
		{ID: "ap3", Pos: geom.Pt(3, 2)},
		{ID: "ap4", Pos: geom.Pt(33, 2)},
		{ID: "ap5", Pos: geom.Pt(18, 10)},
	}
	return p
}

// MuseumAdjDist is the adjacency threshold for the museum plan.
const MuseumAdjDist = 6.8

// boundary returns the four outer wall segments of a w x h plan.
func boundary(w, h float64) []geom.Segment {
	return []geom.Segment{
		geom.Seg(geom.Pt(0, 0), geom.Pt(w, 0)),
		geom.Seg(geom.Pt(w, 0), geom.Pt(w, h)),
		geom.Seg(geom.Pt(w, h), geom.Pt(0, h)),
		geom.Seg(geom.Pt(0, h), geom.Pt(0, 0)),
	}
}

// MustValidate validates p and panics on error. Builders use it in tests
// and commands where an invalid built-in plan is a programming bug.
func MustValidate(p *Plan) *Plan {
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("floorplan: invalid built-in plan: %v", err))
	}
	return p
}

// GridOptions parameterizes the synthetic grid builder.
type GridOptions struct {
	// Cols and Rows give the reference grid dimensions.
	Cols, Rows int
	// SpacingX and SpacingY are the aisle spacings in meters.
	SpacingX, SpacingY float64
	// Margin is the gap between the outer locations and the walls.
	Margin float64
	// APs is the number of access points, placed on a coarse grid across
	// the ceiling.
	APs int
}

// Validate rejects unusable grid options.
func (o GridOptions) Validate() error {
	if o.Cols < 2 || o.Rows < 2 {
		return fmt.Errorf("floorplan: grid needs at least 2x2 locations, got %dx%d", o.Cols, o.Rows)
	}
	if o.SpacingX <= 0 || o.SpacingY <= 0 || o.Margin <= 0 {
		return fmt.Errorf("floorplan: grid spacings and margin must be positive")
	}
	if o.APs < 1 {
		return fmt.Errorf("floorplan: grid needs at least one AP")
	}
	return nil
}

// Grid builds a synthetic open-hall plan with Cols x Rows reference
// locations, for scalability studies beyond the paper's 28 locations.
// Location IDs follow the Fig. 5 convention: row-major from the top
// (north) row.
func Grid(o GridOptions) (*Plan, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{
		Name:   fmt.Sprintf("grid-%dx%d", o.Cols, o.Rows),
		Width:  2*o.Margin + float64(o.Cols-1)*o.SpacingX,
		Height: 2*o.Margin + float64(o.Rows-1)*o.SpacingY,
	}
	p.Walls = boundary(p.Width, p.Height)
	for r := 0; r < o.Rows; r++ {
		y := p.Height - o.Margin - float64(r)*o.SpacingY
		for c := 0; c < o.Cols; c++ {
			p.RefLocs = append(p.RefLocs, RefLoc{
				ID:  r*o.Cols + c + 1,
				Pos: geom.Pt(o.Margin+float64(c)*o.SpacingX, y),
			})
		}
	}
	// APs on a near-square ceiling grid, jittered deterministically so
	// the layout is not perfectly symmetric.
	apCols := 1
	for apCols*apCols < o.APs {
		apCols++
	}
	for i := 0; i < o.APs; i++ {
		cx := i % apCols
		cy := i / apCols
		x := p.Width * (0.5 + float64(cx)) / float64(apCols)
		rows := (o.APs + apCols - 1) / apCols
		y := p.Height * (0.5 + float64(cy)) / float64(rows)
		// Deterministic jitter keeps twins interesting without an RNG.
		x += 0.731 * float64((i*37)%7-3)
		y += 0.577 * float64((i*53)%5-2)
		x = math.Max(0.5, math.Min(x, p.Width-0.5))
		y = math.Max(0.5, math.Min(y, p.Height-0.5))
		p.APs = append(p.APs, AP{ID: fmt.Sprintf("ap%d", i+1), Pos: geom.Pt(x, y)})
	}
	return p, p.Validate()
}

// GridAdjDist returns an adjacency threshold that admits the grid's
// horizontal and vertical neighbors but rejects its diagonals.
func GridAdjDist(o GridOptions) float64 {
	longer := math.Max(o.SpacingX, o.SpacingY)
	diagonal := math.Hypot(o.SpacingX, o.SpacingY)
	return (longer + diagonal) / 2
}
