package floorplan

import (
	"container/heap"
	"fmt"
	"sort"
)

// Edge is a directed aisle edge in the walk graph.
type Edge struct {
	To   int     `json:"to"`
	Dist float64 `json:"dist"`
}

// WalkGraph captures which reference locations are mutually reachable by
// a direct walk (the paper's "adjacent locations") and at what distance.
// The motion database is defined over exactly these pairs.
type WalkGraph struct {
	n   int
	adj map[int][]Edge
}

// BuildWalkGraph connects every pair of reference locations whose
// straight-line distance is at most maxAdjDist and whose connecting
// segment is walkable (no wall or obstacle in the way). This realizes the
// paper's consistency principle: geographic closeness alone does not make
// two locations adjacent if a partition separates them.
func BuildWalkGraph(p *Plan, maxAdjDist float64) *WalkGraph {
	g := &WalkGraph{n: p.NumLocs(), adj: make(map[int][]Edge, p.NumLocs())}
	for i := 1; i <= g.n; i++ {
		for j := i + 1; j <= g.n; j++ {
			d := p.LocDist(i, j)
			if d > maxAdjDist {
				continue
			}
			if !p.Walkable(p.LocPos(i), p.LocPos(j)) {
				continue
			}
			g.adj[i] = append(g.adj[i], Edge{To: j, Dist: d})
			g.adj[j] = append(g.adj[j], Edge{To: i, Dist: d})
		}
	}
	for _, es := range g.adj {
		sort.Slice(es, func(a, b int) bool { return es[a].To < es[b].To })
	}
	return g
}

// NumNodes returns the number of reference locations in the graph.
func (g *WalkGraph) NumNodes() int { return g.n }

// Neighbors returns the aisle edges leaving location id. The returned
// slice must not be modified.
func (g *WalkGraph) Neighbors(id int) []Edge { return g.adj[id] }

// Adjacent reports whether i and j are directly connected.
func (g *WalkGraph) Adjacent(i, j int) bool {
	for _, e := range g.adj[i] {
		if e.To == j {
			return true
		}
	}
	return false
}

// Degree returns the number of neighbors of id.
func (g *WalkGraph) Degree(id int) int { return len(g.adj[id]) }

// NumEdges returns the number of undirected edges.
func (g *WalkGraph) NumEdges() int {
	total := 0
	for _, es := range g.adj {
		total += len(es)
	}
	return total / 2
}

// Connected reports whether every location can reach every other along
// aisles. Crowdsourced training requires a connected graph; a
// disconnected plan is a modelling error.
func (g *WalkGraph) Connected() bool {
	if g.n == 0 {
		return true
	}
	seen := make([]bool, g.n+1)
	stack := []int{1}
	seen[1] = true
	count := 0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for _, e := range g.adj[v] {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return count == g.n
}

// item is a priority-queue element for Dijkstra.
type item struct {
	node int
	dist float64
}

type pq []item

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(item)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// ShortestPath returns the walkable path from src to dst (inclusive of
// both endpoints) and its length in meters. ok is false when dst is
// unreachable. This is the paper's "walkable path" distance, as opposed
// to the straight-line distance a naive map computation would use.
func (g *WalkGraph) ShortestPath(src, dst int) (path []int, dist float64, ok bool) {
	if src < 1 || src > g.n || dst < 1 || dst > g.n {
		return nil, 0, false
	}
	if src == dst {
		return []int{src}, 0, true
	}
	const unreached = -1.0
	distTo := make([]float64, g.n+1)
	prev := make([]int, g.n+1)
	for i := range distTo {
		distTo[i] = unreached
	}
	distTo[src] = 0
	q := &pq{{node: src, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(item)
		if it.dist > distTo[it.node] {
			continue // stale entry
		}
		if it.node == dst {
			break
		}
		for _, e := range g.adj[it.node] {
			nd := it.dist + e.Dist
			if distTo[e.To] == unreached || nd < distTo[e.To] {
				distTo[e.To] = nd
				prev[e.To] = it.node
				heap.Push(q, item{node: e.To, dist: nd})
			}
		}
	}
	if distTo[dst] == unreached {
		return nil, 0, false
	}
	for v := dst; v != src; v = prev[v] {
		path = append(path, v)
	}
	path = append(path, src)
	for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
		path[l], path[r] = path[r], path[l]
	}
	return path, distTo[dst], true
}

// WalkDist returns the walkable-path distance between two locations, or
// an error when no path exists.
func (g *WalkGraph) WalkDist(i, j int) (float64, error) {
	_, d, ok := g.ShortestPath(i, j)
	if !ok {
		return 0, fmt.Errorf("floorplan: no walkable path between %d and %d", i, j)
	}
	return d, nil
}

// GroundTruthRLM returns the map-derived relative location measurement
// between two adjacent locations: the compass bearing from i to j and
// the straight-line distance. The motion-DB sanitation stage compares
// crowdsourced RLMs against these values (paper Sec. IV-B2), and Fig. 6
// reports the residual errors of the trained database against them.
func GroundTruthRLM(p *Plan, i, j int) (dirDeg, offMeters float64) {
	return p.LocBearing(i, j), p.LocDist(i, j)
}
