package floorplan

import (
	"math"
	"path/filepath"
	"testing"

	"moloc/internal/geom"
)

func TestOfficeHallValid(t *testing.T) {
	p := OfficeHall()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := p.NumLocs(); got != 28 {
		t.Errorf("NumLocs = %d, want 28", got)
	}
	if got := len(p.APs); got != 6 {
		t.Errorf("APs = %d, want 6", got)
	}
	if p.Width != 40.8 || p.Height != 16 {
		t.Errorf("extent = %gx%g, want 40.8x16", p.Width, p.Height)
	}
}

func TestOfficeHallGridLayout(t *testing.T) {
	p := OfficeHall()
	// Location 1 is top-left, 7 top-right, 22 bottom-left, 28 bottom-right
	// (Fig. 5 numbering).
	if p.LocPos(1).X >= p.LocPos(7).X {
		t.Error("ID 1 should be west of ID 7")
	}
	if p.LocPos(1).Y <= p.LocPos(22).Y {
		t.Error("ID 1 should be north of ID 22")
	}
	// Vertical neighbors are 4 m apart, horizontal ~5.67 m.
	if d := p.LocDist(1, 8); math.Abs(d-4) > 1e-9 {
		t.Errorf("vertical spacing = %v, want 4", d)
	}
	if d := p.LocDist(1, 2); math.Abs(d-5.6667) > 1e-3 {
		t.Errorf("horizontal spacing = %v, want 5.6667", d)
	}
}

func TestMallMuseumValid(t *testing.T) {
	for _, p := range []*Plan{Mall(), Museum()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: Validate: %v", p.Name, err)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name string
		plan Plan
	}{
		{"zero extent", Plan{Width: 0, Height: 10}},
		{"bad IDs", Plan{Width: 10, Height: 10,
			RefLocs: []RefLoc{{ID: 2, Pos: geom.Pt(1, 1)}}}},
		{"loc out of bounds", Plan{Width: 10, Height: 10,
			RefLocs: []RefLoc{{ID: 1, Pos: geom.Pt(11, 1)}}}},
		{"empty AP id", Plan{Width: 10, Height: 10,
			APs: []AP{{ID: "", Pos: geom.Pt(1, 1)}}}},
		{"AP out of bounds", Plan{Width: 10, Height: 10,
			APs: []AP{{ID: "x", Pos: geom.Pt(1, -1)}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.plan.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestLocPosPanics(t *testing.T) {
	p := OfficeHall()
	defer func() {
		if recover() == nil {
			t.Error("LocPos(0) should panic")
		}
	}()
	p.LocPos(0)
}

func TestNearestLoc(t *testing.T) {
	p := OfficeHall()
	for _, rl := range p.RefLocs {
		if got := p.NearestLoc(rl.Pos); got != rl.ID {
			t.Errorf("NearestLoc(exact pos of %d) = %d", rl.ID, got)
		}
	}
	// A point slightly off location 1 still maps to 1.
	pos := p.LocPos(1).Add(geom.Vec{DX: 0.3, DY: -0.2})
	if got := p.NearestLoc(pos); got != 1 {
		t.Errorf("NearestLoc near 1 = %d", got)
	}
}

func TestWallsBetween(t *testing.T) {
	p := OfficeHall()
	// Open line across the middle of the top aisle: nothing in the way.
	if n := p.WallsBetween(p.LocPos(1), p.LocPos(2)); n != 0 {
		t.Errorf("walls between 1 and 2 = %d, want 0", n)
	}
	// The partition board sits between locations 10 and 17.
	if n := p.WallsBetween(p.LocPos(10), p.LocPos(17)); n == 0 {
		t.Error("partition between 10 and 17 should be counted")
	}
	// Boundary walls are not counted for interior points.
	if n := p.WallsBetween(geom.Pt(0.1, 0.1), geom.Pt(40.7, 0.1)); n != 0 {
		t.Errorf("boundary should not count as interior wall, got %d", n)
	}
}

func TestWalkable(t *testing.T) {
	p := OfficeHall()
	if !p.Walkable(p.LocPos(1), p.LocPos(2)) {
		t.Error("1-2 should be walkable")
	}
	if p.Walkable(p.LocPos(10), p.LocPos(17)) {
		t.Error("10-17 crosses the partition; not walkable")
	}
}

func TestLineOfSight(t *testing.T) {
	p := Museum()
	// Across a room wall: blocked.
	if p.LineOfSight(geom.Pt(6, 15), geom.Pt(6, 10)) {
		t.Error("room wall should block line of sight")
	}
	// Along the corridor: clear.
	if !p.LineOfSight(geom.Pt(3, 10), geom.Pt(33, 10)) {
		t.Error("corridor should be clear")
	}
}

func TestWalkGraphOfficeHall(t *testing.T) {
	p := OfficeHall()
	g := BuildWalkGraph(p, OfficeHallAdjDist)
	if g.NumNodes() != 28 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if !g.Connected() {
		t.Fatal("office hall walk graph must be connected")
	}
	// Grid adjacency: 1-2 (horizontal) and 1-8 (vertical) but not 1-9
	// (diagonal) and not 10-17 (partition).
	if !g.Adjacent(1, 2) || !g.Adjacent(1, 8) {
		t.Error("expected grid adjacency 1-2 and 1-8")
	}
	if g.Adjacent(1, 9) {
		t.Error("diagonal 1-9 should not be adjacent")
	}
	if g.Adjacent(10, 17) {
		t.Error("partition should sever 10-17")
	}
	// Adjacency is symmetric.
	for i := 1; i <= 28; i++ {
		for _, e := range g.Neighbors(i) {
			if !g.Adjacent(e.To, i) {
				t.Errorf("asymmetric edge %d-%d", i, e.To)
			}
		}
	}
	// Corner degree: location 1 has exactly 2 neighbors (2 and 8).
	if d := g.Degree(1); d != 2 {
		t.Errorf("degree(1) = %d, want 2", d)
	}
}

func TestWalkGraphConnectedAll(t *testing.T) {
	tests := []struct {
		plan *Plan
		adj  float64
	}{
		{OfficeHall(), OfficeHallAdjDist},
		{Mall(), MallAdjDist},
		{Museum(), MuseumAdjDist},
	}
	for _, tt := range tests {
		g := BuildWalkGraph(tt.plan, tt.adj)
		if !g.Connected() {
			t.Errorf("%s graph is disconnected", tt.plan.Name)
		}
	}
}

func TestShortestPath(t *testing.T) {
	p := OfficeHall()
	g := BuildWalkGraph(p, OfficeHallAdjDist)

	path, d, ok := g.ShortestPath(1, 1)
	if !ok || d != 0 || len(path) != 1 || path[0] != 1 {
		t.Errorf("trivial path = %v, %v, %v", path, d, ok)
	}

	path, d, ok = g.ShortestPath(1, 3)
	if !ok {
		t.Fatal("no path 1->3")
	}
	want := []int{1, 2, 3}
	if len(path) != 3 || path[0] != 1 || path[1] != 2 || path[2] != 3 {
		t.Errorf("path 1->3 = %v, want %v", path, want)
	}
	if math.Abs(d-2*5.6667) > 1e-3 {
		t.Errorf("dist 1->3 = %v", d)
	}

	// Path around the partition: 10 -> 17 cannot be direct; the shortest
	// detour goes through a horizontal neighbor (length 4 + 5.67 + 4... or
	// via 9/11 and 16/18). It must exceed the straight-line 4 m.
	path, d, ok = g.ShortestPath(10, 17)
	if !ok {
		t.Fatal("no path 10->17")
	}
	if len(path) < 3 {
		t.Errorf("10->17 should detour, path = %v", path)
	}
	if d <= p.LocDist(10, 17) {
		t.Errorf("walk dist %v should exceed straight-line %v", d, p.LocDist(10, 17))
	}

	// Out-of-range nodes.
	if _, _, ok := g.ShortestPath(0, 5); ok {
		t.Error("node 0 should be rejected")
	}
	if _, _, ok := g.ShortestPath(1, 99); ok {
		t.Error("node 99 should be rejected")
	}
}

func TestShortestPathOptimality(t *testing.T) {
	// Dijkstra distance never exceeds any explicitly summed route, and is
	// at least the straight-line distance.
	p := OfficeHall()
	g := BuildWalkGraph(p, OfficeHallAdjDist)
	for i := 1; i <= 28; i++ {
		for j := i + 1; j <= 28; j++ {
			d, err := g.WalkDist(i, j)
			if err != nil {
				t.Fatalf("WalkDist(%d,%d): %v", i, j, err)
			}
			if d+1e-9 < p.LocDist(i, j) {
				t.Errorf("walk dist %d-%d = %v below straight-line %v", i, j, d, p.LocDist(i, j))
			}
		}
	}
}

func TestGroundTruthRLM(t *testing.T) {
	p := OfficeHall()
	// Location 8 is directly south of 1: bearing from 1 to 8 is 180, and
	// from 8 to 1 is 0 (north).
	dir, off := GroundTruthRLM(p, 1, 8)
	if math.Abs(dir-180) > 1e-9 || math.Abs(off-4) > 1e-9 {
		t.Errorf("RLM(1,8) = (%v, %v), want (180, 4)", dir, off)
	}
	dir, _ = GroundTruthRLM(p, 8, 1)
	if math.Abs(dir-0) > 1e-9 {
		t.Errorf("RLM(8,1) dir = %v, want 0", dir)
	}
	// Location 2 is directly east of 1.
	dir, off = GroundTruthRLM(p, 1, 2)
	if math.Abs(dir-90) > 1e-9 || math.Abs(off-5.6667) > 1e-3 {
		t.Errorf("RLM(1,2) = (%v, %v), want (90, 5.6667)", dir, off)
	}
}

func TestNumEdges(t *testing.T) {
	p := OfficeHall()
	g := BuildWalkGraph(p, OfficeHallAdjDist)
	// A full 7x4 grid has 7*3 vertical + 6*4 horizontal = 45 edges; the
	// partition removes one.
	if got := g.NumEdges(); got != 44 {
		t.Errorf("NumEdges = %d, want 44", got)
	}
}

func TestRenderASCII(t *testing.T) {
	p := OfficeHall()
	s := RenderASCII(p, 1)
	if len(s) == 0 {
		t.Fatal("empty rendering")
	}
	for _, ch := range []string{"#", "A", "o"} {
		if !containsStr(s, ch) {
			t.Errorf("rendering missing %q", ch)
		}
	}
	// Degenerate cell size falls back to 1 m.
	if got := RenderASCII(p, 0); len(got) == 0 {
		t.Error("zero cell size should still render")
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plan.json")
	p := OfficeHall()
	if err := SaveJSON(p, path); err != nil {
		t.Fatalf("SaveJSON: %v", err)
	}
	q, err := LoadJSON(path)
	if err != nil {
		t.Fatalf("LoadJSON: %v", err)
	}
	if q.Name != p.Name || q.NumLocs() != p.NumLocs() || len(q.APs) != len(p.APs) {
		t.Error("round trip lost data")
	}
	if q.LocPos(13) != p.LocPos(13) {
		t.Error("round trip moved a reference location")
	}
}

func TestLoadJSONErrors(t *testing.T) {
	if _, err := LoadJSON(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should error")
	}
}

func TestMustValidatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustValidate should panic on invalid plan")
		}
	}()
	MustValidate(&Plan{Width: -1, Height: 1})
}

func TestGrid(t *testing.T) {
	o := GridOptions{Cols: 10, Rows: 6, SpacingX: 5, SpacingY: 4, Margin: 3, APs: 9}
	p, err := Grid(o)
	if err != nil {
		t.Fatalf("Grid: %v", err)
	}
	if p.NumLocs() != 60 || len(p.APs) != 9 {
		t.Fatalf("dims: %d locs, %d APs", p.NumLocs(), len(p.APs))
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Row-major from the top: ID 1 north-west of the last ID.
	if p.LocPos(1).Y <= p.LocPos(60).Y {
		t.Error("ID 1 should be north of the last location")
	}
	g := BuildWalkGraph(p, GridAdjDist(o))
	if !g.Connected() {
		t.Fatal("grid graph must be connected")
	}
	// Interior degree 4, corner degree 2.
	if d := g.Degree(1); d != 2 {
		t.Errorf("corner degree = %d, want 2", d)
	}
	if d := g.Degree(12); d != 4 {
		t.Errorf("interior degree = %d, want 4", d)
	}
	wantEdges := 10*5 + 6*9 // horizontal + vertical
	if g.NumEdges() != wantEdges {
		t.Errorf("edges = %d, want %d", g.NumEdges(), wantEdges)
	}
}

func TestGridErrors(t *testing.T) {
	bad := []GridOptions{
		{Cols: 1, Rows: 5, SpacingX: 5, SpacingY: 4, Margin: 2, APs: 4},
		{Cols: 5, Rows: 5, SpacingX: 0, SpacingY: 4, Margin: 2, APs: 4},
		{Cols: 5, Rows: 5, SpacingX: 5, SpacingY: 4, Margin: 0, APs: 4},
		{Cols: 5, Rows: 5, SpacingX: 5, SpacingY: 4, Margin: 2, APs: 0},
	}
	for i, o := range bad {
		if _, err := Grid(o); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}
