package floorplan

import (
	"math"
	"testing"
	"testing/quick"

	"moloc/internal/geom"
)

// TestGridGraphProperties checks walk-graph invariants over randomly
// shaped grids: symmetry, connectivity, and the triangle inequality of
// walkable distances.
func TestGridGraphProperties(t *testing.T) {
	f := func(colsRaw, rowsRaw uint8, sxRaw, syRaw float64) bool {
		cols := 2 + int(colsRaw%6)
		rows := 2 + int(rowsRaw%4)
		sx := 3 + math.Abs(math.Mod(sxRaw, 4))
		sy := 3 + math.Abs(math.Mod(syRaw, 3))
		o := GridOptions{Cols: cols, Rows: rows, SpacingX: sx, SpacingY: sy, Margin: 2, APs: 4}
		p, err := Grid(o)
		if err != nil {
			return false
		}
		g := BuildWalkGraph(p, GridAdjDist(o))
		if !g.Connected() {
			return false
		}
		// Symmetry of adjacency.
		for i := 1; i <= p.NumLocs(); i++ {
			for _, e := range g.Neighbors(i) {
				if !g.Adjacent(e.To, i) {
					return false
				}
			}
		}
		// Triangle inequality on a few node triples.
		n := p.NumLocs()
		triples := [][3]int{{1, n / 2, n}, {1, 2, n}, {n / 3, n / 2, n}}
		for _, tr := range triples {
			a, b, c := tr[0], tr[1], tr[2]
			if a < 1 || b < 1 || c < 1 || a == b || b == c {
				continue
			}
			dab, err1 := g.WalkDist(a, b)
			dbc, err2 := g.WalkDist(b, c)
			dac, err3 := g.WalkDist(a, c)
			if err1 != nil || err2 != nil || err3 != nil {
				return false
			}
			if dac > dab+dbc+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestWalkDistSymmetric checks d(i,j) == d(j,i) on the office hall.
func TestWalkDistSymmetric(t *testing.T) {
	p := OfficeHall()
	g := BuildWalkGraph(p, OfficeHallAdjDist)
	for i := 1; i <= 28; i += 3 {
		for j := 2; j <= 28; j += 5 {
			if i == j {
				continue
			}
			dij, err1 := g.WalkDist(i, j)
			dji, err2 := g.WalkDist(j, i)
			if err1 != nil || err2 != nil {
				t.Fatalf("WalkDist(%d,%d): %v %v", i, j, err1, err2)
			}
			if math.Abs(dij-dji) > 1e-9 {
				t.Errorf("asymmetric walk distance %d-%d: %v vs %v", i, j, dij, dji)
			}
		}
	}
}

// TestNearestLocIsNearest cross-checks NearestLoc against brute force
// over random probe points.
func TestNearestLocIsNearest(t *testing.T) {
	p := OfficeHall()
	f := func(xRaw, yRaw float64) bool {
		pt := geom.Pt(
			math.Abs(math.Mod(xRaw, p.Width)),
			math.Abs(math.Mod(yRaw, p.Height)))
		got := p.NearestLoc(pt)
		best := p.LocPos(got).Dist(pt)
		for id := 1; id <= p.NumLocs(); id++ {
			if p.LocPos(id).Dist(pt) < best-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestWallsBetweenSymmetric verifies the RF wall count does not depend
// on direction.
func TestWallsBetweenSymmetric(t *testing.T) {
	p := Museum()
	f := func(ax, ay, bx, by float64) bool {
		a := geom.Pt(math.Abs(math.Mod(ax, p.Width)), math.Abs(math.Mod(ay, p.Height)))
		b := geom.Pt(math.Abs(math.Mod(bx, p.Width)), math.Abs(math.Mod(by, p.Height)))
		return p.WallsBetween(a, b) == p.WallsBetween(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
