package floorplan

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"moloc/internal/geom"
)

// RenderASCII draws the plan as a text grid, one character per cell of
// the given size in meters: '#' walls, 'o' obstacles, 'A' access points,
// and the last digit of each reference location ID. It is used by the
// floorview command and by debugging sessions.
func RenderASCII(p *Plan, cellMeters float64) string {
	if cellMeters <= 0 {
		cellMeters = 1
	}
	cols := int(p.Width/cellMeters) + 1
	rows := int(p.Height/cellMeters) + 1
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(".", cols))
	}
	put := func(pt geom.Point, ch byte) {
		c := int(pt.X / cellMeters)
		r := rows - 1 - int(pt.Y/cellMeters)
		if r >= 0 && r < rows && c >= 0 && c < cols {
			grid[r][c] = ch
		}
	}
	for _, w := range p.Walls {
		steps := int(w.Len()/cellMeters*2) + 1
		for i := 0; i <= steps; i++ {
			put(w.A.Lerp(w.B, float64(i)/float64(steps)), '#')
		}
	}
	for _, o := range p.Obstacles {
		put(o.Center(), 'o')
	}
	for _, rl := range p.RefLocs {
		put(rl.Pos, byte('0'+rl.ID%10))
	}
	for _, ap := range p.APs {
		put(ap.Pos, 'A')
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%.1fm x %.1fm, %d locations, %d APs)\n",
		p.Name, p.Width, p.Height, len(p.RefLocs), len(p.APs))
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}

// SaveJSON writes the plan to a JSON file.
func SaveJSON(p *Plan, path string) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return fmt.Errorf("floorplan: marshal: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("floorplan: write %s: %w", path, err)
	}
	return nil
}

// LoadJSON reads a plan from a JSON file and validates it.
func LoadJSON(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("floorplan: read %s: %w", path, err)
	}
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("floorplan: parse %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}
