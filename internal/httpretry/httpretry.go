// Package httpretry is the client-side half of the robustness story:
// jittered exponential backoff with a retry budget for the repo's HTTP
// clients (molocctl, molocsmoke). The server sheds load with 429 and
// degrades with 503; a client that hammers straight through those turns
// a brown-out into an outage, and one that gives up on the first
// connection refused cannot ride out a restart. Retries are capped both
// by attempt count and by total sleep budget, honor Retry-After, and
// jitter every delay so a fleet of clients does not reconverge in
// lockstep.
package httpretry

import (
	"bytes"
	"context"
	"net/http"
	"strconv"
	"time"

	"moloc/internal/stats"
)

// Defaults for the zero fields of Policy.
const (
	DefaultMaxAttempts = 8
	DefaultBase        = 100 * time.Millisecond
	DefaultCap         = 3 * time.Second
	DefaultBudget      = 30 * time.Second
)

// Policy says when and how long to wait between attempts. The zero
// value of each field selects the package default; RNG is required
// (jitter is the point).
type Policy struct {
	// MaxAttempts bounds total tries, the first included.
	MaxAttempts int
	// Base is the first retry's nominal delay; it doubles per attempt.
	Base time.Duration
	// Cap bounds a single delay, including one asked for by Retry-After.
	Cap time.Duration
	// Budget bounds the cumulative sleep across all retries of one Do: a
	// retry that would overspend it is not taken. It is the answer to
	// "how long may this call block, worst case".
	Budget time.Duration
	// RNG drives the jitter; an explicit seed keeps test runs
	// reproducible.
	RNG *stats.RNG
	// Sleep is the wait seam; nil selects time.Sleep. Tests capture
	// delays here instead of actually waiting.
	Sleep func(time.Duration)
	// Client issues the requests; nil selects http.DefaultClient.
	Client *http.Client
}

// New returns a Policy with the package defaults and the given RNG.
func New(rng *stats.RNG) Policy { return Policy{RNG: rng} }

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.Base <= 0 {
		p.Base = DefaultBase
	}
	if p.Cap <= 0 {
		p.Cap = DefaultCap
	}
	if p.Budget <= 0 {
		p.Budget = DefaultBudget
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	if p.Client == nil {
		p.Client = http.DefaultClient
	}
	return p
}

// RetryableStatus reports whether a status code is worth retrying:
// overload shedding (429) and the transient 5xx family a restarting or
// degraded server emits. 500 is excluded — it marks a bug, and a bug
// does not heal between attempts.
func RetryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// Do issues the request, retrying retryable failures under the policy.
// The body is replayed from the byte slice on every attempt. It returns
// the last response received — possibly still a retryable status, when
// attempts or budget ran out — or the last transport error when no
// response ever arrived. The caller owns the returned response body.
func (p Policy) Do(method, url, contentType string, body []byte) (*http.Response, error) {
	return p.DoContext(context.Background(), method, url, contentType, body)
}

// DoContext is Do with a caller-owned lifetime: ctx rides every request
// (so in-flight attempts abort with it) and a cancellation or deadline
// expiry cuts a backoff sleep short immediately — a caller giving up
// during the longest capped delay gets control back within a tick, not
// after the delay runs out. A canceled call returns ctx's error.
func (p Policy) DoContext(ctx context.Context, method, url, contentType string, body []byte) (*http.Response, error) {
	customSleep := p.Sleep != nil
	p = p.withDefaults()
	var spent time.Duration
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, method, url, bytes.NewReader(body))
		if err != nil {
			return nil, err // malformed request; no retry can fix it
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := p.Client.Do(req)
		if err == nil && !RetryableStatus(resp.StatusCode) {
			return resp, nil
		}

		delay := p.backoff(attempt)
		if err == nil {
			if ra, ok := retryAfter(resp.Header, p.Cap); ok {
				delay = ra
			}
		}
		if attempt+1 >= p.MaxAttempts || spent+delay > p.Budget {
			// Out of attempts or budget: hand back whatever we have.
			return resp, err
		}
		if resp != nil {
			// The retried response is dead weight; drop it before the next
			// attempt replaces it.
			//lint:ignore errdrop discarding a response we are about to retry
			_ = resp.Body.Close()
		}
		spent += delay
		if werr := p.sleep(ctx, delay, customSleep); werr != nil {
			// The caller gave up mid-backoff; its cancellation — not the
			// transport state we were retrying — is the outcome.
			return nil, werr
		}
	}
}

// sleep waits out one backoff delay, aborting as soon as ctx is
// canceled. An injected Sleep seam stays synchronous — tests that
// capture delays own time — but is still fenced by ctx checks on both
// sides; the default path selects on a real timer so a cancellation
// mid-delay returns immediately.
func (p Policy) sleep(ctx context.Context, d time.Duration, customSleep bool) error {
	if customSleep {
		if err := ctx.Err(); err != nil {
			return err
		}
		p.Sleep(d)
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// backoff computes the jittered exponential delay for one attempt:
// half the nominal delay guaranteed, the other half uniform — enough
// spread to de-synchronize clients without ever retrying absurdly
// early.
func (p Policy) backoff(attempt int) time.Duration {
	d := p.Base << uint(attempt)
	if d > p.Cap || d <= 0 { // <= 0 catches shift overflow
		d = p.Cap
	}
	return d/2 + time.Duration(p.RNG.Float64()*float64(d/2))
}

// retryAfter parses a Retry-After header (delta-seconds or HTTP-date),
// capped at cap so a confused server cannot park the client.
func retryAfter(h http.Header, cap time.Duration) (time.Duration, bool) {
	v := h.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		d := time.Duration(secs) * time.Second
		if d > cap {
			d = cap
		}
		return d, true
	}
	if at, err := http.ParseTime(v); err == nil {
		d := time.Until(at)
		if d < 0 {
			d = 0
		}
		if d > cap {
			d = cap
		}
		return d, true
	}
	return 0, false
}
