package httpretry

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"moloc/internal/stats"
)

// scripted serves a fixed sequence of statuses, then 200 forever.
func scripted(statuses ...int) (*httptest.Server, *atomic.Int64) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(calls.Add(1)) - 1
		if n < len(statuses) {
			w.WriteHeader(statuses[n])
			return
		}
		body, _ := io.ReadAll(r.Body)
		w.WriteHeader(http.StatusOK)
		//lint:ignore errdrop test server echo
		_, _ = w.Write(body)
	}))
	return ts, &calls
}

// testPolicy sleeps nowhere and records every delay.
func testPolicy(delays *[]time.Duration) Policy {
	p := New(stats.NewRNG(1))
	p.Sleep = func(d time.Duration) { *delays = append(*delays, d) }
	return p
}

func TestRetriesUntilSuccess(t *testing.T) {
	ts, calls := scripted(http.StatusServiceUnavailable, http.StatusTooManyRequests)
	defer ts.Close()
	var delays []time.Duration
	resp, err := testPolicy(&delays).Do(http.MethodPost, ts.URL, "application/json", []byte(`{"x":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if calls.Load() != 3 || len(delays) != 2 {
		t.Fatalf("calls = %d, delays = %v", calls.Load(), delays)
	}
	// The body must have been replayed on the final attempt.
	body, _ := io.ReadAll(resp.Body)
	if string(body) != `{"x":1}` {
		t.Fatalf("replayed body = %q", body)
	}
}

func TestBackoffGrowsWithJitter(t *testing.T) {
	ts, _ := scripted(503, 503, 503, 503)
	defer ts.Close()
	var delays []time.Duration
	p := testPolicy(&delays)
	resp, err := p.Do(http.MethodGet, ts.URL, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(delays) != 4 {
		t.Fatalf("delays = %v", delays)
	}
	for i, d := range delays {
		nominal := DefaultBase << uint(i)
		if d < nominal/2 || d > nominal {
			t.Errorf("delay %d = %v, want in [%v, %v]", i, d, nominal/2, nominal)
		}
	}
}

func TestNonRetryableStatusReturnsImmediately(t *testing.T) {
	for _, status := range []int{http.StatusBadRequest, http.StatusNotFound, http.StatusInternalServerError} {
		ts, calls := scripted(status, status)
		var delays []time.Duration
		resp, err := testPolicy(&delays).Do(http.MethodGet, ts.URL, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != status || calls.Load() != 1 || len(delays) != 0 {
			t.Errorf("status %d: got %d after %d calls, %d sleeps",
				status, resp.StatusCode, calls.Load(), len(delays))
		}
		ts.Close()
	}
}

func TestRetryAfterHonoredAndCapped(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusServiceUnavailable)
		case 2:
			w.Header().Set("Retry-After", "9999")
			w.WriteHeader(http.StatusServiceUnavailable)
		default:
			w.WriteHeader(http.StatusOK)
		}
	}))
	defer ts.Close()
	var delays []time.Duration
	p := testPolicy(&delays)
	p.Budget = time.Hour // the capped 9999s must come from Cap, not Budget
	resp, err := p.Do(http.MethodGet, ts.URL, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(delays) != 2 {
		t.Fatalf("delays = %v", delays)
	}
	if delays[0] != 2*time.Second {
		t.Errorf("Retry-After 2 gave delay %v", delays[0])
	}
	if delays[1] != DefaultCap {
		t.Errorf("absurd Retry-After gave delay %v, want cap %v", delays[1], DefaultCap)
	}
}

func TestAttemptCapReturnsLastResponse(t *testing.T) {
	ts, calls := scripted(503, 503, 503, 503, 503, 503, 503, 503, 503, 503)
	defer ts.Close()
	var delays []time.Duration
	p := testPolicy(&delays)
	p.MaxAttempts = 3
	resp, err := p.Do(http.MethodGet, ts.URL, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want the last 503", resp.StatusCode)
	}
	if calls.Load() != 3 || len(delays) != 2 {
		t.Fatalf("calls = %d, delays = %v", calls.Load(), delays)
	}
}

func TestBudgetStopsRetrying(t *testing.T) {
	ts, calls := scripted(503, 503, 503, 503, 503)
	defer ts.Close()
	var delays []time.Duration
	p := testPolicy(&delays)
	p.Base = 200 * time.Millisecond
	p.Budget = 300 * time.Millisecond // room for roughly one backoff, never four
	resp, err := p.Do(http.MethodGet, ts.URL, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if calls.Load() >= 5 {
		t.Fatalf("budget did not stop retries: %d calls, slept %v", calls.Load(), delays)
	}
}

// TestConnectionRefusedRetriesAcrossRestart is the restart scenario: the
// first attempt finds nobody listening, the "server" comes up during the
// backoff, and the retry succeeds — the client rides out the restart.
func TestConnectionRefusedRetriesAcrossRestart(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var started atomic.Bool
	var srv *httptest.Server
	p := New(stats.NewRNG(2))
	p.Sleep = func(time.Duration) {
		if started.CompareAndSwap(false, true) {
			l2, err := net.Listen("tcp", addr)
			if err != nil {
				t.Errorf("rebind %s: %v", addr, err)
				return
			}
			srv = &httptest.Server{
				Listener: l2,
				Config: &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					w.WriteHeader(http.StatusOK)
				})},
			}
			srv.Start()
		}
	}
	defer func() {
		if srv != nil {
			srv.Close()
		}
	}()

	resp, err := p.Do(http.MethodGet, "http://"+addr+"/", "", nil)
	if err != nil {
		t.Fatalf("did not recover across restart: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestExhaustedConnectionErrorsSurface(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var delays []time.Duration
	p := testPolicy(&delays)
	p.MaxAttempts = 3
	resp, err := p.Do(http.MethodGet, "http://"+addr+"/", "", nil)
	if err == nil {
		resp.Body.Close()
		t.Fatal("expected a transport error with nothing listening")
	}
	if len(delays) != 2 {
		t.Fatalf("delays = %v, want 2 retries", delays)
	}
}

func TestContextCancelAbortsBackoffMidSleep(t *testing.T) {
	// The server always sheds, so every attempt wants a long backoff.
	ts, calls := scripted(http.StatusServiceUnavailable, http.StatusServiceUnavailable,
		http.StatusServiceUnavailable, http.StatusServiceUnavailable)
	defer ts.Close()

	p := New(stats.NewRNG(1))
	// Real sleeps (no seam) with a first delay far longer than the test:
	// only a cancellation cutting the sleep short lets this finish.
	p.Base = 30 * time.Second
	p.Cap = 30 * time.Second
	p.Budget = 10 * time.Minute

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var resp *http.Response
	var err error
	go func() {
		defer close(done)
		resp, err = p.DoContext(ctx, http.MethodPost, ts.URL, "application/json", nil)
	}()

	// Let the first attempt land and the backoff start, then cancel.
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("DoContext still sleeping 2s after cancellation; backoff ignored the context")
	}
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if resp != nil {
		t.Fatalf("canceled call returned a response: %v", resp.Status)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("attempts after cancel = %d, want 1", got)
	}
}

func TestContextCancelWithSleepSeamStillAborts(t *testing.T) {
	// With an injected Sleep seam the wait is synchronous, but the fence
	// after it must still stop the retry loop: no request goes out on a
	// canceled context.
	ts, calls := scripted(http.StatusServiceUnavailable, http.StatusServiceUnavailable,
		http.StatusServiceUnavailable)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	p := New(stats.NewRNG(1))
	var delays []time.Duration
	p.Sleep = func(d time.Duration) {
		delays = append(delays, d)
		cancel() // the caller gives up while the backoff "sleeps"
	}
	resp, err := p.DoContext(ctx, http.MethodPost, ts.URL, "application/json", nil)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if resp != nil {
		t.Fatalf("canceled call returned a response: %v", resp.Status)
	}
	if len(delays) != 1 || calls.Load() != 1 {
		t.Fatalf("delays = %v, calls = %d; want exactly one of each", delays, calls.Load())
	}
}
