package crowd

import (
	"testing"

	"moloc/internal/motiondb"
	"moloc/internal/stats"
)

// TestBuildMotionDBParallelWorkerInvariance is the parallel-ingestion
// correctness contract: because every trace gets a consumption-
// independent forked RNG and shard builders merge in block order, the
// trained database — entries and drop counters alike — must be
// bit-identical for every worker count.
func TestBuildMotionDBParallelWorkerInvariance(t *testing.T) {
	fx := newFixture(t, 24)
	cfg := motiondb.NewBuilderConfig()

	type result struct {
		db      *motiondb.DB
		builder *motiondb.Builder
	}
	var results []result
	for _, workers := range []int{1, 3, 8} {
		db, b, err := BuildMotionDBParallel(fx.pipe, fx.graph, fx.traces, cfg, stats.NewRNG(17), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		results = append(results, result{db, b})
	}

	ref := results[0]
	for k, r := range results[1:] {
		workers := []int{3, 8}[k]
		if got, want := r.db.NumEntries(), ref.db.NumEntries(); got != want {
			t.Fatalf("workers=%d: %d entries, workers=1 has %d", workers, got, want)
		}
		for _, p := range ref.db.Pairs() {
			we, _ := ref.db.Lookup(p[0], p[1])
			ge, ok := r.db.Lookup(p[0], p[1])
			if !ok || ge != we {
				t.Errorf("workers=%d: pair %v = %+v ok=%v, workers=1 fitted %+v", workers, p, ge, ok, we)
			}
		}
		s1, n1, c1, f1 := ref.builder.Dropped()
		s2, n2, c2, f2 := r.builder.Dropped()
		if s1 != s2 || n1 != n2 || c1 != c2 || f1 != f2 {
			t.Errorf("workers=%d: drop counters (%d,%d,%d,%d), workers=1 (%d,%d,%d,%d)",
				workers, s2, n2, c2, f2, s1, n1, c1, f1)
		}
		if ref.builder.MapSeeded() != r.builder.MapSeeded() {
			t.Errorf("workers=%d: map-seeded %d, workers=1 %d",
				workers, r.builder.MapSeeded(), ref.builder.MapSeeded())
		}
	}
}

// TestBuildMotionDBParallelMirrorConsistency checks the reassembled
// database keeps the paper's mirror invariant for every trained pair —
// including north-south edges whose bearings straddle the 0/360 seam:
// the reverse lookup is exactly the mirrored entry.
func TestBuildMotionDBParallelMirrorConsistency(t *testing.T) {
	fx := newFixture(t, 16)
	db, _, err := BuildMotionDBParallel(fx.pipe, fx.graph, fx.traces,
		motiondb.NewBuilderConfig(), stats.NewRNG(29), 4)
	if err != nil {
		t.Fatal(err)
	}
	pairs := db.Pairs()
	if len(pairs) == 0 {
		t.Fatal("no trained pairs")
	}
	seamPairs := 0
	for _, p := range pairs {
		fwd, _ := db.Lookup(p[0], p[1])
		rev, ok := db.Lookup(p[1], p[0])
		if !ok || rev != fwd.Mirror() {
			t.Errorf("pair %v: reverse %+v ok=%v, want exact mirror of %+v", p, rev, ok, fwd)
		}
		if fwd.MeanDir < 45 || fwd.MeanDir > 315 {
			seamPairs++
		}
	}
	if seamPairs == 0 {
		t.Log("note: no near-seam bearings in this fixture; mirror check still covered all pairs")
	}
}

// TestBuildMotionDBParallelEdgeCases covers the degenerate inputs: no
// traces (one shard builds the empty-but-seeded database) and more
// workers than traces (clamped).
func TestBuildMotionDBParallelEdgeCases(t *testing.T) {
	fx := newFixture(t, 2)
	db, _, err := BuildMotionDBParallel(fx.pipe, fx.graph, nil,
		motiondb.NewBuilderConfig(), stats.NewRNG(5), 4)
	if err != nil {
		t.Fatalf("no traces: %v", err)
	}
	if db.NumLocs() != 28 {
		t.Errorf("no traces: NumLocs = %d", db.NumLocs())
	}

	db2, _, err := BuildMotionDBParallel(fx.pipe, fx.graph, fx.traces,
		motiondb.NewBuilderConfig(), stats.NewRNG(5), 64)
	if err != nil {
		t.Fatalf("workers > traces: %v", err)
	}
	if db2.NumEntries() == 0 {
		t.Error("workers > traces: empty database")
	}
}
