package crowd

import (
	"math"
	"testing"

	"moloc/internal/fingerprint"
	"moloc/internal/floorplan"
	"moloc/internal/geom"
	"moloc/internal/motion"
	"moloc/internal/motiondb"
	"moloc/internal/rf"
	"moloc/internal/sensors"
	"moloc/internal/stats"
	"moloc/internal/trace"
)

// fixture bundles a small office-hall setup for pipeline tests.
type fixture struct {
	plan   *floorplan.Plan
	graph  *floorplan.WalkGraph
	fdb    *fingerprint.DB
	pool   FPPool
	pipe   *Pipeline
	traces []*trace.Trace
}

func newFixture(t *testing.T, numTraces int) *fixture {
	t.Helper()
	plan := floorplan.OfficeHall()
	graph := floorplan.BuildWalkGraph(plan, floorplan.OfficeHallAdjDist)
	model, err := rf.NewModel(plan, rf.NewParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	survey, err := fingerprint.Survey(model, fingerprint.NewSurveyConfig(), stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	fdb, err := survey.BuildDB(fingerprint.Euclidean{}, model.NumAPs())
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := NewPipeline(plan, fdb, survey.MotionEst, motion.NewConfig())
	if err != nil {
		t.Fatal(err)
	}
	sg, err := sensors.NewGenerator(sensors.NewParams())
	if err != nil {
		t.Fatal(err)
	}
	tcfg := trace.NewConfig()
	tcfg.NumLegs = 8
	tg, err := trace.NewGenerator(plan, graph, sg, motion.NewConfig(), tcfg)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		plan:   plan,
		graph:  graph,
		fdb:    fdb,
		pool:   survey.MotionEst,
		pipe:   pipe,
		traces: tg.GenerateBatch(trace.DefaultUsers(), numTraces, stats.NewRNG(3)),
	}
}

func TestNewPipelineErrors(t *testing.T) {
	fx := newFixture(t, 1)
	// Pool size mismatch.
	if _, err := NewPipeline(fx.plan, fx.fdb, fx.pool[:5], motion.NewConfig()); err == nil {
		t.Error("short pool should be rejected")
	}
	// Empty pool bucket.
	badPool := make(FPPool, len(fx.pool))
	copy(badPool, fx.pool)
	badPool[3] = nil
	if _, err := NewPipeline(fx.plan, fx.fdb, badPool, motion.NewConfig()); err == nil {
		t.Error("empty pool bucket should be rejected")
	}
	// Invalid motion config.
	if _, err := NewPipeline(fx.plan, fx.fdb, fx.pool, motion.Config{}); err == nil {
		t.Error("invalid motion config should be rejected")
	}
	// DB size mismatch.
	small, err := fingerprint.NewDB(fingerprint.Euclidean{}, 6,
		[][]fingerprint.Fingerprint{{make(fingerprint.Fingerprint, 6)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPipeline(fx.plan, small, fx.pool, motion.NewConfig()); err == nil {
		t.Error("small fingerprint DB should be rejected")
	}
}

func TestProcessStructure(t *testing.T) {
	fx := newFixture(t, 1)
	tr := fx.traces[0]
	td := fx.pipe.Process(tr, stats.NewRNG(5))
	if td.StartTrue != tr.Start {
		t.Errorf("StartTrue = %d, want %d", td.StartTrue, tr.Start)
	}
	if len(td.Legs) != len(tr.Legs) {
		t.Fatalf("legs = %d, want %d", len(td.Legs), len(tr.Legs))
	}
	for i, ld := range td.Legs {
		if ld.TrueFrom != tr.Legs[i].From || ld.TrueTo != tr.Legs[i].To {
			t.Errorf("leg %d ground truth mismatch", i)
		}
		if ld.EstFrom < 1 || ld.EstFrom > 28 || ld.EstTo < 1 || ld.EstTo > 28 {
			t.Errorf("leg %d estimates out of range: %d, %d", i, ld.EstFrom, ld.EstTo)
		}
		if len(ld.FP) != 6 {
			t.Errorf("leg %d fingerprint has %d APs", i, len(ld.FP))
		}
	}
}

func TestProcessEstimatesMostlyReasonable(t *testing.T) {
	fx := newFixture(t, 4)
	correct, total := 0, 0
	for _, tr := range fx.traces {
		td := fx.pipe.Process(tr, stats.NewRNG(7))
		for _, ld := range td.Legs {
			total++
			if ld.EstTo == ld.TrueTo {
				correct++
			}
		}
	}
	// Estimates are NN fixes under fingerprint ambiguity; far from
	// perfect but far better than chance (1/28).
	frac := float64(correct) / float64(total)
	if frac < 0.3 {
		t.Errorf("NN estimate accuracy %.2f implausibly low", frac)
	}
}

func TestProcessRLMQuality(t *testing.T) {
	fx := newFixture(t, 4)
	var dirErr, offErr stats.Online
	walking := 0
	total := 0
	for _, tr := range fx.traces {
		td := fx.pipe.Process(tr, stats.NewRNG(9))
		for _, ld := range td.Legs {
			total++
			if ld.RLM == nil {
				continue
			}
			walking++
			gtDir, gtOff := floorplan.GroundTruthRLM(fx.plan, ld.TrueFrom, ld.TrueTo)
			dirErr.Add(geom.AbsAngleDiff(ld.RLM.Dir, gtDir))
			offErr.Add(math.Abs(ld.RLM.Off - gtOff))
		}
	}
	if walking < total*3/4 {
		t.Errorf("only %d/%d legs recognized as walking", walking, total)
	}
	if dirErr.Mean() > 20 {
		t.Errorf("mean RLM direction error %.1f deg too large", dirErr.Mean())
	}
	if offErr.Mean() > 0.8 {
		t.Errorf("mean RLM offset error %.2f m too large", offErr.Mean())
	}
}

func TestObservations(t *testing.T) {
	fx := newFixture(t, 1)
	td := fx.pipe.Process(fx.traces[0], stats.NewRNG(11))
	obs := Observations(td)
	if len(obs) == 0 {
		t.Fatal("no observations produced")
	}
	walking := 0
	for _, ld := range td.Legs {
		if ld.RLM != nil {
			walking++
		}
	}
	if len(obs) != walking {
		t.Errorf("observations = %d, walking legs = %d", len(obs), walking)
	}
	for _, o := range obs {
		if o.From < 1 || o.To < 1 {
			t.Errorf("invalid endpoints %+v", o)
		}
	}
}

func TestProjectTraceData(t *testing.T) {
	fx := newFixture(t, 1)
	td := fx.pipe.Process(fx.traces[0], stats.NewRNG(13))
	p := ProjectTraceData(td, []int{0, 2})
	if len(p.StartFP) != 2 {
		t.Errorf("projected start FP width = %d", len(p.StartFP))
	}
	if p.StartFP[1] != td.StartFP[2] {
		t.Error("projection should map AP index 2 to slot 1")
	}
	for i, ld := range p.Legs {
		if len(ld.FP) != 2 {
			t.Fatalf("leg %d projected width = %d", i, len(ld.FP))
		}
		if ld.TrueTo != td.Legs[i].TrueTo || (ld.RLM == nil) != (td.Legs[i].RLM == nil) {
			t.Fatal("projection must preserve non-fingerprint fields")
		}
	}
	// Original untouched.
	if len(td.StartFP) != 6 {
		t.Error("projection must not mutate the input")
	}
}

func TestBuildMotionDB(t *testing.T) {
	fx := newFixture(t, 30)
	mdb, builder, err := BuildMotionDB(fx.pipe, fx.graph, fx.traces,
		motiondb.NewBuilderConfig(), stats.NewRNG(17))
	if err != nil {
		t.Fatalf("BuildMotionDB: %v", err)
	}
	if mdb.NumLocs() != 28 {
		t.Errorf("NumLocs = %d", mdb.NumLocs())
	}
	// With the map fallback every walk-graph edge must be covered.
	for i := 1; i <= 28; i++ {
		for _, e := range fx.graph.Neighbors(i) {
			if e.To < i {
				continue
			}
			if _, ok := mdb.Lookup(i, e.To); !ok {
				t.Errorf("edge %d-%d untrained and unseeded", i, e.To)
			}
		}
	}
	// Trained entries should be close to map truth.
	dirErrs, offErrs := mdb.ValidationErrors(fx.plan)
	if stats.Mean(dirErrs) > 15 {
		t.Errorf("mean direction error %.1f too large", stats.Mean(dirErrs))
	}
	if stats.Mean(offErrs) > 1 {
		t.Errorf("mean offset error %.2f too large", stats.Mean(offErrs))
	}
	selfLoops, nonAdj, _, _ := builder.Dropped()
	if selfLoops == 0 && nonAdj == 0 {
		t.Log("note: no dropped observations; unusual but not wrong")
	}
}

func TestBuildMotionDBNilGraph(t *testing.T) {
	fx := newFixture(t, 5)
	mdb, _, err := BuildMotionDB(fx.pipe, nil, fx.traces,
		motiondb.NewBuilderConfig(), stats.NewRNG(19))
	if err != nil {
		t.Fatalf("BuildMotionDB: %v", err)
	}
	if mdb.NumLocs() != 28 {
		t.Error("nil graph should still build a database")
	}
}

func TestProcessDeterminism(t *testing.T) {
	fx := newFixture(t, 1)
	a := fx.pipe.Process(fx.traces[0], stats.NewRNG(23))
	b := fx.pipe.Process(fx.traces[0], stats.NewRNG(23))
	if a.StartEst != b.StartEst {
		t.Fatal("start estimate differs under same seed")
	}
	for i := range a.Legs {
		if a.Legs[i].EstTo != b.Legs[i].EstTo {
			t.Fatal("estimates differ under same seed")
		}
		if (a.Legs[i].RLM == nil) != (b.Legs[i].RLM == nil) {
			t.Fatal("RLM presence differs under same seed")
		}
		if a.Legs[i].RLM != nil && *a.Legs[i].RLM != *b.Legs[i].RLM {
			t.Fatal("RLMs differ under same seed")
		}
	}
}
