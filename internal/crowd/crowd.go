// Package crowd implements MoLoc's crowdsourcing pipeline (paper
// Sec. IV-B): it replays walking traces, attaches the RSS fingerprints a
// phone would scan at each reference location it passes, estimates those
// locations with the fingerprint database, extracts relative location
// measurements from the IMU streams (with two-pass placement-offset
// calibration), and feeds the results to the motion-database builder.
//
// The same processing produces the observation sequences the evaluation
// feeds to the localizers, so training and testing share one code path.
package crowd

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"

	"moloc/internal/fingerprint"
	"moloc/internal/floorplan"
	"moloc/internal/geom"
	"moloc/internal/motion"
	"moloc/internal/motiondb"
	"moloc/internal/stats"
	"moloc/internal/trace"
)

// FPPool holds per-location fingerprint samples to draw from when a
// trace passes a reference location: pool[i] are the available scans at
// location i+1. The survey's MotionEst samples feed training, the Test
// samples feed evaluation (paper Sec. VI-A).
type FPPool [][]fingerprint.Fingerprint

// LegData is the processed form of one trace leg.
type LegData struct {
	// TrueFrom/TrueTo are the ground-truth endpoints (known only to the
	// evaluation; the paper gets them from user feedback marks).
	TrueFrom int
	TrueTo   int
	// EstFrom/EstTo are the fingerprint-database estimates of the
	// endpoints, what the crowdsourcing pipeline actually believes.
	EstFrom int
	EstTo   int
	// FP is the fingerprint scanned on arrival at TrueTo.
	FP fingerprint.Fingerprint
	// RLM is the extracted relative location measurement, nil when the
	// motion unit decided the user was not walking.
	RLM *motion.RLM
}

// TraceData is the processed form of one trace.
type TraceData struct {
	StartTrue int
	StartEst  int
	StartFP   fingerprint.Fingerprint
	Legs      []LegData
}

// Pipeline processes traces against a plan, a fingerprint database, and
// a fingerprint pool.
type Pipeline struct {
	plan *floorplan.Plan
	fdb  *fingerprint.DB
	pool FPPool
	mcfg motion.Config
}

// NewPipeline builds a processing pipeline. The pool must cover every
// reference location with at least one sample.
func NewPipeline(plan *floorplan.Plan, fdb *fingerprint.DB, pool FPPool,
	mcfg motion.Config) (*Pipeline, error) {
	if err := mcfg.Validate(); err != nil {
		return nil, err
	}
	if len(pool) != plan.NumLocs() {
		return nil, fmt.Errorf("crowd: pool covers %d locations, plan has %d",
			len(pool), plan.NumLocs())
	}
	for i, scans := range pool {
		if len(scans) == 0 {
			return nil, fmt.Errorf("crowd: no fingerprint samples for location %d", i+1)
		}
	}
	if fdb.NumLocs() != plan.NumLocs() {
		return nil, fmt.Errorf("crowd: fingerprint DB covers %d locations, plan has %d",
			fdb.NumLocs(), plan.NumLocs())
	}
	return &Pipeline{plan: plan, fdb: fdb, pool: pool, mcfg: mcfg}, nil
}

// pickFP draws one pooled fingerprint for the true location.
func (p *Pipeline) pickFP(loc int, rng *stats.RNG) fingerprint.Fingerprint {
	scans := p.pool[loc-1]
	return scans[rng.Intn(len(scans))]
}

// calibPair is one (compass mean, believed map bearing) sample of the
// pass-one placement-offset calibration.
type calibPair struct{ compass, bearing float64 }

// procScratch holds every buffer one trace replay needs. The parallel
// training path keeps one per worker so replaying N traces costs O(max
// trace size) allocations instead of O(N); Process hands processInto a
// fresh one, which is the allocate-per-call behavior.
type procScratch struct {
	visits []int
	fps    []fingerprint.Fingerprint
	ests   []int
	pairs  []calibPair
	// rlms backs the RLM pointers of td.Legs until the next processInto
	// call on this scratch.
	//moloc:reuse
	rlms []motion.RLM
	td   TraceData
	// obs is the worker-loop observation staging buffer.
	//moloc:reuse
	obs []motiondb.Observation
}

// Process replays one trace: it scans a fingerprint at every visited
// reference location, estimates the visit locations, calibrates the
// compass placement offset from the estimated leg bearings (pass one),
// and extracts each leg's RLM with the calibrated headings (pass two).
func (p *Pipeline) Process(tr *trace.Trace, rng *stats.RNG) *TraceData {
	// A fresh scratch per call: nothing else ever writes these buffers,
	// so the copied-out TraceData owns them and the reuse contract of
	// processInto does not escape here.
	var sc procScratch
	td := *p.processInto(tr, rng, &sc)
	return &td
}

// processInto is Process writing into caller-owned scratch: the
// returned *TraceData points into sc and is valid only until the next
// processInto call on the same scratch. RNG consumption is identical
// to Process (only pickFP draws), so the two produce bit-identical
// trace data for the same stream.
//
//moloc:reuse
func (p *Pipeline) processInto(tr *trace.Trace, rng *stats.RNG, sc *procScratch) *TraceData {
	sc.visits = append(sc.visits[:0], tr.Start)
	for _, leg := range tr.Legs {
		sc.visits = append(sc.visits, leg.To)
	}
	visits := sc.visits
	sc.fps = sc.fps[:0]
	sc.ests = sc.ests[:0]
	for _, loc := range visits {
		fp := p.pickFP(loc, rng)
		sc.fps = append(sc.fps, fp)
		sc.ests = append(sc.ests, p.fdb.Nearest(fp))
	}
	fps, ests := sc.fps, sc.ests

	// Pass one: placement-offset calibration in the spirit of Zee. Legs
	// whose estimated endpoints differ contribute (compass mean, believed
	// map bearing) pairs. Mislocalized legs produce outlier pairs, so the
	// calibration is trimmed: a first round forms a consensus offset, a
	// second round keeps only the pairs near it. The offset is constant
	// per trace (the phone does not change hands mid-walk), so trimming
	// converges quickly.
	pairs := sc.pairs[:0]
	for i, leg := range tr.Legs {
		if ests[i] == ests[i+1] {
			continue
		}
		pairs = append(pairs, calibPair{
			compass: motion.MeanHeading(leg.Samples),
			bearing: p.plan.LocBearing(ests[i], ests[i+1]),
		})
	}
	sc.pairs = pairs
	// Mode-finding: correct pairs cluster tightly around the true offset
	// while mislocalized pairs scatter at grid-angle multiples, so the
	// densest window wins. Each pair votes for every window center
	// within windowDeg of its offset; the center with the most votes
	// seeds the final estimator.
	var est motion.HeadingEstimator
	if len(pairs) > 0 {
		const windowDeg = 20.0
		bestCount, bestCenter := -1, 0.0
		for _, center := range pairs {
			c := geom.AngleDiff(center.compass, center.bearing)
			count := 0
			for _, pr := range pairs {
				if geom.AbsAngleDiff(geom.AngleDiff(pr.compass, pr.bearing), c) <= windowDeg {
					count++
				}
			}
			if count > bestCount {
				bestCount, bestCenter = count, c
			}
		}
		for _, pr := range pairs {
			if geom.AbsAngleDiff(geom.AngleDiff(pr.compass, pr.bearing), bestCenter) <= windowDeg {
				est.Observe(pr.compass, pr.bearing)
			}
		}
	}

	// Pass two: RLM extraction with corrected headings. The RLMs land in
	// sc.rlms, sized up front so the pointers stored in LegData stay
	// valid while the slice fills.
	if cap(sc.rlms) < len(tr.Legs) {
		sc.rlms = make([]motion.RLM, 0, len(tr.Legs))
	}
	sc.rlms = sc.rlms[:0]
	stepLen := motion.StepLength(p.mcfg, tr.User.HeightM, tr.User.WeightKg)
	td := &sc.td
	td.StartTrue = visits[0]
	td.StartEst = ests[0]
	td.StartFP = fps[0]
	td.Legs = td.Legs[:0]
	for i, leg := range tr.Legs {
		ld := LegData{
			TrueFrom: leg.From,
			TrueTo:   leg.To,
			EstFrom:  ests[i],
			EstTo:    ests[i+1],
			FP:       fps[i+1],
		}
		if rlm, ok := motion.Extract(p.mcfg, leg.Samples, leg.T0, leg.T1, stepLen, &est); ok {
			sc.rlms = append(sc.rlms, rlm)
			ld.RLM = &sc.rlms[len(sc.rlms)-1]
		}
		td.Legs = append(td.Legs, ld)
	}
	return td
}

// Observations converts processed trace data into motion-database
// observations: every walking leg contributes one RLM between its
// *estimated* endpoints, exactly what a deployed system (with no ground
// truth) could record.
func Observations(td *TraceData) []motiondb.Observation {
	return observationsAppend(nil, td)
}

// observationsAppend is Observations appending into dst, for callers
// that recycle the observation buffer across traces. Like append, the
// result aliases dst's backing array, so it is owned by whoever owns
// dst.
func observationsAppend(dst []motiondb.Observation, td *TraceData) []motiondb.Observation {
	for _, ld := range td.Legs {
		if ld.RLM == nil {
			continue
		}
		dst = append(dst, motiondb.Observation{
			From: ld.EstFrom, To: ld.EstTo, RLM: *ld.RLM,
		})
	}
	return dst
}

// ProjectTraceData returns a copy of td with every fingerprint
// restricted to the given AP indices. The evaluation's AP-count sweeps
// project processed traces this way: the RLMs are sensor-derived and do
// not depend on how many APs the localizer may use, so they are shared.
func ProjectTraceData(td *TraceData, apIdx []int) *TraceData {
	out := &TraceData{
		StartTrue: td.StartTrue,
		StartEst:  td.StartEst,
		StartFP:   td.StartFP.Project(apIdx),
		Legs:      make([]LegData, len(td.Legs)),
	}
	for i, ld := range td.Legs {
		out.Legs[i] = ld
		out.Legs[i].FP = ld.FP.Project(apIdx)
	}
	return out
}

// BuildMotionDB runs the full training pipeline: process every trace,
// feed all observations to a motion-database builder, and build. A
// non-nil graph enables the builder's adjacency consistency filter and
// map fallback. It returns the database together with the builder for
// drop-count introspection.
//
// Processing is sequential on one shared RNG stream; the offline
// experiment pipeline keeps this exact consumption order so published
// numbers stay reproducible. BuildMotionDBParallel is the sharded
// variant for ingestion-bound training.
func BuildMotionDB(p *Pipeline, graph *floorplan.WalkGraph, traces []*trace.Trace,
	cfg motiondb.BuilderConfig, rng *stats.RNG) (*motiondb.DB, *motiondb.Builder, error) {
	builder, err := motiondb.NewBuilder(p.plan, cfg)
	if err != nil {
		return nil, nil, err
	}
	if graph != nil {
		builder.UseGraph(graph)
	}
	for _, tr := range traces {
		builder.AddAll(Observations(p.Process(tr, rng)))
	}
	return builder.Build(), builder, nil
}

// BuildMotionDBParallel is BuildMotionDB sharded across a worker pool:
// the traces are partitioned into contiguous blocks, each worker
// replays its block into a private streaming builder, and the shard
// builders are merged in block order before the final Build. The
// pipeline itself is read-only during Process, so workers share it.
//
// Each trace draws from its own stream derived from rng by trace index
// (a fast generator reseeded with the trace's fork seed, so deriving a
// stream costs one word write instead of reseeding the standard
// source's 607-word register). Derived streams depend only on the
// parent seed and the trace index — not on how much any other stream
// consumed — and the in-order merge replays samples
// exactly as a single sequential pass over the forked streams would, so
// the result (entries and drop counters alike) is bit-identical for
// every worker count. The per-trace streams differ from the single
// sequential stream BuildMotionDB consumes, which is why the offline
// path keeps the serial function: the two are statistically equivalent,
// not identical. workers < 1 selects GOMAXPROCS.
//
// Each worker replays its whole block through one reused RNG
// (ForkInto) and one reused processing scratch, so the steady-state
// per-trace allocation cost is the builder's sample growth — nothing
// else — and the parallel path is never slower than the serial one
// even on a single CPU.
func BuildMotionDBParallel(p *Pipeline, graph *floorplan.WalkGraph, traces []*trace.Trace,
	cfg motiondb.BuilderConfig, rng *stats.RNG, workers int) (*motiondb.DB, *motiondb.Builder, error) {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(traces) {
		workers = len(traces)
	}
	if workers < 1 {
		workers = 1 // no traces: one shard builds the empty database
	}
	shards := make([]*motiondb.Builder, workers)
	for w := range shards {
		b, err := motiondb.NewBuilder(p.plan, cfg)
		if err != nil {
			return nil, nil, err
		}
		if graph != nil {
			b.UseGraph(graph)
		}
		shards[w] = b
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(traces) / workers
		hi := (w + 1) * len(traces) / workers
		wg.Add(1)
		go func(b *motiondb.Builder, lo, hi int) {
			defer wg.Done()
			trng := stats.NewFastRNG(0)
			var sc procScratch
			for i := lo; i < hi; i++ {
				rng.ForkInto(trng, "trace-"+strconv.Itoa(i))
				sc.obs = observationsAppend(sc.obs[:0], p.processInto(traces[i], trng, &sc))
				b.AddAll(sc.obs)
			}
		}(shards[w], lo, hi)
	}
	wg.Wait()

	root := shards[0]
	for _, sh := range shards[1:] {
		if err := root.Merge(sh); err != nil {
			return nil, nil, err
		}
	}
	return root.Build(), root, nil
}
