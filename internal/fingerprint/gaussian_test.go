package fingerprint

import (
	"math"
	"testing"
	"testing/quick"
)

func mustGaussianDB(t *testing.T) *GaussianDB {
	t.Helper()
	samples := [][]Fingerprint{
		{{-40, -80}, {-42, -78}, {-41, -82}},
		{{-60, -60}, {-58, -62}, {-61, -59}},
		{{-80, -40}, {-79, -42}, {-82, -38}},
	}
	g, err := NewGaussianDB(2, samples)
	if err != nil {
		t.Fatalf("NewGaussianDB: %v", err)
	}
	return g
}

func TestNewGaussianDBErrors(t *testing.T) {
	if _, err := NewGaussianDB(0, nil); err == nil {
		t.Error("zero APs should error")
	}
	if _, err := NewGaussianDB(2, [][]Fingerprint{{}}); err == nil {
		t.Error("empty location should error")
	}
	if _, err := NewGaussianDB(2, [][]Fingerprint{{{-40}}}); err == nil {
		t.Error("width mismatch should error")
	}
}

func TestGaussianStdFloor(t *testing.T) {
	// All-identical samples must not produce zero std.
	g, err := NewGaussianDB(1, [][]Fingerprint{{{-50}, {-50}, {-50}}})
	if err != nil {
		t.Fatal(err)
	}
	if g.std[0][0] != MinGaussianStd {
		t.Errorf("std = %v, want floor %v", g.std[0][0], MinGaussianStd)
	}
}

func TestMostLikely(t *testing.T) {
	g := mustGaussianDB(t)
	tests := []struct {
		f    Fingerprint
		want int
	}{
		{Fingerprint{-41, -80}, 1},
		{Fingerprint{-59, -61}, 2},
		{Fingerprint{-81, -39}, 3},
	}
	for _, tt := range tests {
		if got := g.MostLikely(tt.f); got != tt.want {
			t.Errorf("MostLikely(%v) = %d, want %d", tt.f, got, tt.want)
		}
	}
}

func TestLogLikelihoodOrdering(t *testing.T) {
	g := mustGaussianDB(t)
	f := Fingerprint{-41, -80}
	if g.LogLikelihood(1, f) <= g.LogLikelihood(3, f) {
		t.Error("likelihood should favor the matching location")
	}
}

func TestLogLikelihoodPanicsOnWidth(t *testing.T) {
	g := mustGaussianDB(t)
	defer func() {
		if recover() == nil {
			t.Error("width mismatch should panic")
		}
	}()
	g.LogLikelihood(1, Fingerprint{-40})
}

func TestGaussianCandidates(t *testing.T) {
	g := mustGaussianDB(t)
	cands := g.Candidates(Fingerprint{-41, -80}, 2)
	if len(cands) != 2 {
		t.Fatalf("len = %d", len(cands))
	}
	if cands[0].Loc != 1 {
		t.Errorf("top = %d, want 1", cands[0].Loc)
	}
	var sum float64
	for _, c := range cands {
		if c.Prob < 0 || c.Prob > 1 {
			t.Errorf("prob %v out of range", c.Prob)
		}
		sum += c.Prob
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probs sum to %v", sum)
	}
	if cands[0].Prob <= cands[1].Prob {
		t.Error("candidates should be ranked")
	}
	if g.Candidates(Fingerprint{-41, -80}, 0) != nil {
		t.Error("k=0 should return nil")
	}
	if got := g.Candidates(Fingerprint{-41, -80}, 100); len(got) != 3 {
		t.Errorf("k clamps to %d, got %d", 3, len(got))
	}
}

func TestGaussianCandidatesSumProperty(t *testing.T) {
	g := mustGaussianDB(t)
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		fp := Fingerprint{-40 - math.Mod(math.Abs(a), 60), -40 - math.Mod(math.Abs(b), 60)}
		cands := g.Candidates(fp, 3)
		var sum float64
		for _, c := range cands {
			sum += c.Prob
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGaussianProjectAPs(t *testing.T) {
	g := mustGaussianDB(t)
	p, err := g.ProjectAPs([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumAPs() != 1 || p.NumLocs() != 3 {
		t.Errorf("dims = %d x %d", p.NumLocs(), p.NumAPs())
	}
	if p.mean[0][0] != g.mean[0][1] {
		t.Error("projection picked the wrong AP")
	}
	if _, err := g.ProjectAPs([]int{9}); err == nil {
		t.Error("out-of-range AP should error")
	}
}

func TestGaussianAgreesWithNNOnCleanData(t *testing.T) {
	// With well-separated locations and centered queries, the ML and NN
	// estimates coincide.
	gdb := mustGaussianDB(t)
	db := mustDB(t)
	for _, f := range []Fingerprint{{-41, -79}, {-61, -59}, {-79, -41}} {
		if gdb.MostLikely(f) != db.Nearest(f) {
			t.Errorf("ML and NN disagree on %v", f)
		}
	}
}
