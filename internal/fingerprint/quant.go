package fingerprint

import (
	"math"
	"math/bits"
)

// This file implements the quantized radio-map layout and its distance
// kernel (DESIGN.md §13). The exact []float64 row-major map stays the
// reference; alongside it the DB keeps the per-AP RSS means quantized
// to int8 in a blocked structure-of-arrays layout:
//
//	block b covers locations b*qBlock+1 .. b*qBlock+qBlock (1-based);
//	within a block, AP a's 64 int8 lanes are contiguous —
//	codes[(b*numAPs+a)*qBlock + j] is AP a of location b*qBlock+j+1.
//
// One AP dimension of one block is therefore exactly one 64-byte cache
// line, and the kernel streams block-by-block accumulating int32
// squared code differences — no float math, no per-location slice
// headers, and cold blocks (those outside a candidate mask) are never
// touched.
//
// Quantization never changes results. The kernel is a prefilter: from
// the accumulated code distance it derives conservative lower and upper
// bounds on the exact squared Euclidean distance, keeps a bounded top-k
// of upper bounds, shortlists every location whose lower bound could
// still make the top-k, and rescores the shortlist exactly over the
// float64 reference rows with the same (dissimilarity, location)
// selection the exact scan uses. The result is value-identical to
// KNearestAppend, ties included. When a query RSS component falls
// outside the quantization range (so its code would saturate and the
// error bound would break), the quantized path refuses and the caller
// falls back to the exact scan.

// qBlock is the number of locations per block: 64 int8 lanes, one cache
// line per AP dimension. It intentionally equals the width of a uint64
// so one mask word covers exactly one block.
const qBlock = 64

// qPad widens the quantization range beyond the radio map's own
// [min, max] RSS span (in dBm) so that live queries — which carry
// measurement noise the averaged map rows do not — still quantize
// without saturating.
const qPad = 6.0

// quantMap is the quantized blocked-SoA companion of a DB's flat map.
type quantMap struct {
	n       int // locations
	w       int // APs
	nBlocks int
	mid     float64 // RSS mapped to code 0
	step    float64 // dBm per code unit
	inv     float64 // 1/step
	codes   []int8
}

// buildQuant quantizes the flat radio map, or returns nil when the map
// cannot be quantized (no locations, no finite span). Only Euclidean
// DBs build one — the kernel bounds squared Euclidean distance.
func buildQuant(flat []float64, n, w int) *quantMap {
	if n == 0 || w == 0 {
		return nil
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range flat {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	lo, hi = lo-qPad, hi+qPad
	qm := &quantMap{
		n:       n,
		w:       w,
		nBlocks: (n + qBlock - 1) / qBlock,
		mid:     (lo + hi) / 2,
		step:    (hi - lo) / 254,
	}
	qm.inv = 1 / qm.step
	qm.codes = make([]int8, qm.nBlocks*w*qBlock)
	for i := 0; i < n; i++ {
		b, j := i/qBlock, i%qBlock
		row := flat[i*w : (i+1)*w]
		for a, v := range row {
			qm.codes[(b*w+a)*qBlock+j] = int8(math.Round((v - qm.mid) * qm.inv))
		}
	}
	return qm
}

// Query owns the reusable state of quantized and reachability-gated
// radio-map scans: the candidate mask (one bit per location, one word
// per block) and the kernel scratch. One Query per serving session; a
// Query is not safe for concurrent use, but distinct Queries may scan
// one shared DB concurrently.
type Query struct {
	n     int
	words []uint64 // candidate bitmap; word b covers block b
	//moloc:reuse
	touched []int32 // indices of nonzero words, unsorted until a scan
	count   int     // masked locations

	// Kernel scratch, sized lazily on first use.
	//moloc:reuse
	qcode []int32 // quantized query, one code per AP
	//moloc:reuse
	acc []int32 // per-lane squared code distance
	//moloc:reuse
	short []int32 // shortlist of 0-based location indices
	//moloc:reuse
	ub []float64 // bounded top-k of distance upper bounds
}

// NewQuery sizes a query for a source with numLocs locations.
func NewQuery(numLocs int) *Query {
	if numLocs < 0 {
		numLocs = 0
	}
	return &Query{
		n:     numLocs,
		words: make([]uint64, (numLocs+qBlock-1)/qBlock),
	}
}

// NumLocs returns the location count the query was sized for.
func (q *Query) NumLocs() int { return q.n }

// ResetMask clears the candidate mask in O(marked blocks).
func (q *Query) ResetMask() {
	for _, b := range q.touched {
		q.words[b] = 0
	}
	q.touched = q.touched[:0]
	q.count = 0
}

// MaskLoc marks a 1-based location as a scan candidate. Out-of-range
// locations are ignored; re-marking a location is a no-op.
func (q *Query) MaskLoc(loc int) {
	if loc < 1 || loc > q.n {
		return
	}
	i := loc - 1
	b, bit := i/qBlock, uint(i%qBlock)
	w := q.words[b]
	if w&(1<<bit) != 0 {
		return
	}
	if w == 0 {
		q.touched = append(q.touched, int32(b))
	}
	q.words[b] = w | 1<<bit
	q.count++
}

// MaskCount returns the number of masked locations.
func (q *Query) MaskCount() int { return q.count }

// Masked reports whether a 1-based location is in the mask.
func (q *Query) Masked(loc int) bool {
	if loc < 1 || loc > q.n {
		return false
	}
	i := loc - 1
	return q.words[i/qBlock]&(1<<uint(i%qBlock)) != 0
}

// sortTouched orders the marked block list ascending so masked scans
// visit locations in ID order (the selection tie-break depends on it).
// Insertion sort: a gate mask touches a handful of blocks.
func (q *Query) sortTouched() {
	t := q.touched
	for i := 1; i < len(t); i++ {
		for j := i; j > 0 && t[j] < t[j-1]; j-- {
			t[j], t[j-1] = t[j-1], t[j]
		}
	}
}

// MaskedCandidateAppender extends CandidateAppender with
// reachability-gated queries: CandidatesMaskedAppend restricts the
// candidate scan to the locations marked in q, so a motion prior can
// prune the scan before any fingerprint distance is computed (SRL-KNN
// style). Both built-in sources implement it.
type MaskedCandidateAppender interface {
	CandidateAppender
	// CandidatesMaskedAppend fills dst with the (up to) k most plausible
	// masked locations for f — value-identical to filtering the full
	// Candidates scan to the mask — with probabilities normalized over
	// the masked candidates. ok is false (and dst is not filled) when
	// the mask is empty or nil; callers then fall back to the full scan.
	CandidatesMaskedAppend(dst []Candidate, f Fingerprint, k int, q *Query) (out []Candidate, ok bool)
}

var (
	_ MaskedCandidateAppender = (*DB)(nil)
	_ MaskedCandidateAppender = (*GaussianDB)(nil)
)

// CandidatesMaskedAppend implements MaskedCandidateAppender for the
// deterministic radio map: the quantized kernel over masked blocks
// when it can serve, the exact masked scan otherwise.
//
//moloc:hotpath
func (db *DB) CandidatesMaskedAppend(dst []Candidate, f Fingerprint, k int, q *Query) ([]Candidate, bool) {
	if q == nil || q.count == 0 || k <= 0 || len(db.fps) == 0 {
		return dst, false
	}
	mustSameLen(f, db.fps[0])
	if out, ok := db.kNearestQuant(dst, f, k, q, true); ok {
		return out, true
	}
	return db.kNearestMaskedExact(dst, f, k, q), true
}

// KNearestQuantAppend is KNearestAppend through the quantized kernel
// over every block: value-identical to the exact scan (ties included).
// ok is false when the quantized path cannot serve — non-Euclidean
// metric, unquantizable map, or a query RSS outside the quantization
// range — and the caller must use KNearestAppend.
func (db *DB) KNearestQuantAppend(dst []Candidate, f Fingerprint, k int, q *Query) ([]Candidate, bool) {
	if k <= 0 || len(db.fps) == 0 {
		return dst, false
	}
	mustSameLen(f, db.fps[0])
	return db.kNearestQuant(dst, f, k, q, false)
}

// kNearestQuant runs the blocked quantized prefilter and the exact
// rescore. With masked set it visits only the mask's blocks and lanes;
// otherwise every block. See the file comment for the layout and the
// equivalence argument; the bound derivation is in DESIGN.md §13.
//
//moloc:hotpath
func (db *DB) kNearestQuant(dst []Candidate, f Fingerprint, k int, q *Query, masked bool) ([]Candidate, bool) {
	qm := db.quant
	if qm == nil || q == nil || len(f) != qm.w {
		return dst, false
	}

	// Quantize the query once. A component outside the quantization
	// range would saturate and void the error bound: refuse, the caller
	// runs the exact path. (The comparison is written so NaN refuses.)
	if cap(q.qcode) < qm.w {
		q.qcode = make([]int32, qm.w)
	}
	qf := q.qcode[:qm.w]
	for a, v := range f {
		c := math.Round((v - qm.mid) * qm.inv)
		if !(c >= -127 && c <= 127) {
			return dst, false
		}
		qf[a] = int32(c)
	}

	if cap(q.acc) < qBlock {
		q.acc = make([]int32, qBlock)
	}
	acc := q.acc[:qBlock]
	short := q.short[:0]
	if cap(q.ub) < k {
		q.ub = make([]float64, 0, k)
	}
	ubTop := q.ub[:0]

	// Bound constants: for exact per-AP difference x and code difference
	// c, |x - step*c| <= step, so with S = sum c^2 over w APs,
	//	exact^2 <= step^2 * (S + 2*sqrt(w*S) + w)   (upper)
	//	exact^2 >= step^2 * (S - 2*sqrt(w*S))       (lower)
	// by Cauchy-Schwarz on the cross terms.
	s2 := qm.step * qm.step
	wf := float64(qm.w)
	w := qm.w

	var blocks int
	if masked {
		q.sortTouched()
		blocks = len(q.touched)
	} else {
		blocks = qm.nBlocks
	}
	m := 0
	tau := math.Inf(1)
	for bi := 0; bi < blocks; bi++ {
		b := bi
		if masked {
			b = int(q.touched[bi])
		}
		// One AP dimension at a time: 64 int8 lanes, one cache line.
		base := b * w * qBlock
		for j := range acc {
			acc[j] = 0
		}
		for a := 0; a < w; a++ {
			qa := qf[a]
			row := qm.codes[base+a*qBlock : base+a*qBlock+qBlock]
			for j, c := range row {
				d := qa - int32(c)
				acc[j] += d * d
			}
		}
		// Select lanes: the mask word's set bits, or every lane up to n.
		loc0 := b * qBlock
		if masked {
			for word := q.words[b]; word != 0; word &= word - 1 {
				j := bits.TrailingZeros64(word)
				sq := float64(acc[j])
				rt := math.Sqrt(wf * sq)
				if s2*(sq-2*rt) <= tau { // lower bound can still make top-k
					short = append(short, int32(loc0+j))
				}
				ub := s2 * (sq + 2*rt + wf)
				if m < k {
					m++
					ubTop = ubTop[:m]
					i := m - 1
					for i > 0 && ubTop[i-1] > ub {
						ubTop[i] = ubTop[i-1]
						i--
					}
					ubTop[i] = ub
				} else if ub < ubTop[m-1] {
					i := m - 1
					for i > 0 && ubTop[i-1] > ub {
						ubTop[i] = ubTop[i-1]
						i--
					}
					ubTop[i] = ub
				}
				if m == k {
					tau = ubTop[m-1]
				}
			}
		} else {
			lim := qBlock
			if qm.n-loc0 < lim {
				lim = qm.n - loc0
			}
			for j := 0; j < lim; j++ {
				sq := float64(acc[j])
				rt := math.Sqrt(wf * sq)
				if s2*(sq-2*rt) <= tau {
					short = append(short, int32(loc0+j))
				}
				ub := s2 * (sq + 2*rt + wf)
				if m < k {
					m++
					ubTop = ubTop[:m]
					i := m - 1
					for i > 0 && ubTop[i-1] > ub {
						ubTop[i] = ubTop[i-1]
						i--
					}
					ubTop[i] = ub
				} else if ub < ubTop[m-1] {
					i := m - 1
					for i > 0 && ubTop[i-1] > ub {
						ubTop[i] = ubTop[i-1]
						i--
					}
					ubTop[i] = ub
				}
				if m == k {
					tau = ubTop[m-1]
				}
			}
		}
	}
	q.short, q.ub = short, ubTop[:0]

	// Exact rescore of the shortlist: the same bounded selection as
	// KNearestAppend over float64 reference rows, in ascending location
	// order, so ties resolve identically to the exact full scan.
	if cap(dst) < k {
		dst = make([]Candidate, 0, k)
	} else {
		dst = dst[:0]
	}
	sel := 0
	worst := math.Inf(1)
	for _, li := range short {
		row := db.flat[int(li)*w : int(li)*w+w]
		var s float64
		for a, v := range f {
			dv := v - row[a]
			s += dv * dv
		}
		d := math.Sqrt(s)
		if sel == k && d >= worst {
			continue
		}
		if sel < k {
			sel++
			dst = dst[:sel]
		}
		j := sel - 1
		for j > 0 && dst[j-1].Dissim > d {
			dst[j] = dst[j-1]
			j--
		}
		dst[j] = Candidate{Loc: int(li) + 1, Dissim: d}
		worst = dst[sel-1].Dissim
	}
	assignProbs(dst)
	return dst, true
}

// kNearestMaskedExact is the masked scan without quantization: the
// metric evaluated at every masked location, bounded selection as in
// KNearestAppend. It serves non-Euclidean metrics and saturating
// queries, and is the executable specification the quantized masked
// path is tested against.
//
//moloc:hotpath
func (db *DB) kNearestMaskedExact(dst []Candidate, f Fingerprint, k int, q *Query) []Candidate {
	if k > q.count {
		k = q.count
	}
	if cap(dst) < k {
		dst = make([]Candidate, 0, k)
	} else {
		dst = dst[:0]
	}
	_, euclid := db.metric.(Euclidean)
	w := db.numAPs
	q.sortTouched()
	m := 0
	worst := math.Inf(1)
	for _, bw := range q.touched {
		b := int(bw)
		for word := q.words[b]; word != 0; word &= word - 1 {
			i := b*qBlock + bits.TrailingZeros64(word)
			if i >= len(db.fps) {
				continue
			}
			var d float64
			if euclid {
				row := db.flat[i*w : i*w+w]
				var s float64
				for a, v := range f {
					dv := v - row[a]
					s += dv * dv
				}
				d = math.Sqrt(s)
			} else {
				d = db.metric.Distance(f, db.fps[i])
			}
			if m == k && d >= worst {
				continue
			}
			if m < k {
				m++
				dst = dst[:m]
			}
			j := m - 1
			for j > 0 && dst[j-1].Dissim > d {
				dst[j] = dst[j-1]
				j--
			}
			dst[j] = Candidate{Loc: i + 1, Dissim: d}
			worst = dst[m-1].Dissim
		}
	}
	assignProbs(dst)
	return dst
}

// CandidatesMaskedAppend implements MaskedCandidateAppender for the
// probabilistic source: the masked locations ranked by negative
// log-likelihood, softmax-normalized over the masked candidate set.
//
//moloc:hotpath
func (g *GaussianDB) CandidatesMaskedAppend(dst []Candidate, f Fingerprint, k int, q *Query) ([]Candidate, bool) {
	if q == nil || q.count == 0 || k <= 0 {
		return dst, false
	}
	if k > q.count {
		k = q.count
	}
	if cap(dst) < k {
		dst = make([]Candidate, 0, k)
	} else {
		dst = dst[:0]
	}
	q.sortTouched()
	m := 0
	worst := math.Inf(1)
	for _, bw := range q.touched {
		b := int(bw)
		for word := q.words[b]; word != 0; word &= word - 1 {
			i := b*qBlock + bits.TrailingZeros64(word)
			if i >= len(g.mean) {
				continue
			}
			d := -g.LogLikelihood(i+1, f)
			if m == k && d >= worst {
				continue
			}
			if m < k {
				m++
				dst = dst[:m]
			}
			j := m - 1
			for j > 0 && dst[j-1].Dissim > d {
				dst[j] = dst[j-1]
				j--
			}
			dst[j] = Candidate{Loc: i + 1, Dissim: d}
			worst = dst[m-1].Dissim
		}
	}
	softmaxProbs(dst)
	return dst, true
}
