package fingerprint

import (
	"math"
	"testing"

	"moloc/internal/stats"
)

// constDB builds a radio map whose every location has the identical
// fingerprint — the degenerate all-ties map.
func constDB(t *testing.T, n, w int, rss float64) *DB {
	t.Helper()
	samples := make([][]Fingerprint, n)
	for i := range samples {
		fp := make(Fingerprint, w)
		for a := range fp {
			fp[a] = rss
		}
		samples[i] = []Fingerprint{fp}
	}
	db, err := NewDB(Euclidean{}, w, samples)
	if err != nil {
		t.Fatalf("NewDB: %v", err)
	}
	return db
}

// TestQuantSaturationFallsBack pins the int8 saturation edges: a query
// RSS outside the quantization range would saturate its code and void
// the error bound, so the quantized entry point must refuse — and the
// masked entry point must transparently serve the exact fallback with
// results identical to the filtered reference.
func TestQuantSaturationFallsBack(t *testing.T) {
	db := randomDB(t, 160, 6, false)
	q := NewQuery(160)
	rng := stats.NewRNG(31)
	inRange := randomScan(rng, 6)

	cases := []struct {
		name string
		fp   Fingerprint
	}{
		{"below_range", Fingerprint{-200, -60, -60, -60, -60, -60}},
		{"above_range", Fingerprint{10, -60, -60, -60, -60, -60}},
		{"all_below", Fingerprint{-500, -500, -500, -500, -500, -500}},
		{"nan_component", Fingerprint{math.NaN(), -60, -60, -60, -60, -60}},
	}
	for _, tc := range cases {
		if _, ok := db.KNearestQuantAppend(nil, tc.fp, 8, q); ok {
			t.Errorf("%s: quantized path accepted a saturating scan", tc.name)
		}
	}
	// In-range control: the quantized path must serve.
	if _, ok := db.KNearestQuantAppend(nil, inRange, 8, q); !ok {
		t.Fatalf("quantized path refused an in-range scan")
	}

	// Masked queries with saturating scans go through the exact masked
	// fallback and must still match the filtered reference. (NaN is
	// excluded: NaN distances make ordering itself undefined.)
	q.ResetMask()
	for i := 0; i < 12; i++ {
		q.MaskLoc(rng.Intn(160) + 1)
	}
	for _, tc := range cases[:3] {
		want := maskedRef(db.KNearestRef(tc.fp, 160), q, 8)
		got, ok := db.CandidatesMaskedAppend(nil, tc.fp, 8, q)
		if !ok {
			t.Fatalf("%s: masked scan refused a non-empty mask", tc.name)
		}
		if !candidatesEqual(got, want) {
			t.Errorf("%s: masked fallback = %v, filtered reference %v", tc.name, got, want)
		}
	}
}

// TestQuantAllEqualMap covers the all-ties degenerate map: every
// location equidistant from any scan. The quantized kernel can prune
// nothing (every lower bound ties every upper bound), but the result
// must still be value-identical to the reference — lowest location IDs
// win, probabilities uniform.
func TestQuantAllEqualMap(t *testing.T) {
	for _, n := range []int{1, 64, 130} {
		db := constDB(t, n, 4, -60)
		q := NewQuery(n)
		fp := Fingerprint{-55, -62, -58, -61}
		for _, k := range []int{1, 8, n} {
			want := db.KNearestRef(fp, k)
			got, ok := db.KNearestQuantAppend(nil, fp, k, q)
			if !ok {
				t.Fatalf("n=%d k=%d: quantized path refused the all-equal map", n, k)
			}
			if !candidatesEqual(got, want) {
				t.Fatalf("n=%d k=%d: quantized = %v, reference %v", n, k, got, want)
			}
		}
		// Exact match against the constant map: every location at
		// distance zero, probability mass split evenly.
		got, ok := db.KNearestQuantAppend(nil, db.At(1), 8, q)
		if !ok {
			t.Fatalf("n=%d: quantized path refused the exact-match scan", n)
		}
		if !candidatesEqual(got, db.KNearestRef(db.At(1), 8)) {
			t.Fatalf("n=%d: exact-match quantized ranking diverges from reference", n)
		}
	}
}

// TestMaskedKExceedsCandidates pins k > masked-candidate count: the
// scan returns exactly MaskCount candidates, never padding or reading
// past the mask.
func TestMaskedKExceedsCandidates(t *testing.T) {
	db := randomDB(t, 100, 6, true)
	q := NewQuery(100)
	q.MaskLoc(3)
	q.MaskLoc(64) // last lane of block 0
	q.MaskLoc(65) // first lane of block 1
	fp := randomScan(stats.NewRNG(37), 6)
	got, ok := db.CandidatesMaskedAppend(nil, fp, 50, q)
	if !ok {
		t.Fatalf("masked scan refused a 3-location mask")
	}
	if len(got) != 3 {
		t.Fatalf("k=50 over a 3-location mask returned %d candidates", len(got))
	}
	if !candidatesEqual(got, maskedRef(db.KNearestRef(fp, 100), q, 50)) {
		t.Fatalf("masked top-k diverges from filtered reference: %v", got)
	}
}

// TestMaskedEmptyAndNil pins the refusal contract the localizer's
// fallback ladder depends on: nil query or empty mask -> ok=false.
func TestMaskedEmptyAndNil(t *testing.T) {
	db := randomDB(t, 28, 6, false)
	fp := randomScan(stats.NewRNG(41), 6)
	if _, ok := db.CandidatesMaskedAppend(nil, fp, 8, nil); ok {
		t.Errorf("nil query accepted")
	}
	q := NewQuery(28)
	if _, ok := db.CandidatesMaskedAppend(nil, fp, 8, q); ok {
		t.Errorf("empty mask accepted")
	}
	q.MaskLoc(0)   // out of range, ignored
	q.MaskLoc(29)  // out of range, ignored
	q.MaskLoc(-40) // out of range, ignored
	if q.MaskCount() != 0 {
		t.Fatalf("out-of-range MaskLoc calls counted: %d", q.MaskCount())
	}
	q.MaskLoc(5)
	q.MaskLoc(5) // idempotent
	if q.MaskCount() != 1 {
		t.Fatalf("MaskCount = %d after double-masking one location", q.MaskCount())
	}
	q.ResetMask()
	if q.MaskCount() != 0 || q.Masked(5) {
		t.Fatalf("ResetMask left state behind")
	}
}

// TestUnquantizableMap: a radio map with a non-finite mean cannot build
// a quantized layout; the quantized entry point refuses and the masked
// path serves exactly.
func TestUnquantizableMap(t *testing.T) {
	samples := [][]Fingerprint{
		{Fingerprint{-60, math.Inf(-1)}},
		{Fingerprint{-70, -50}},
	}
	db, err := NewDB(Euclidean{}, 2, samples)
	if err != nil {
		t.Fatalf("NewDB: %v", err)
	}
	if db.quant != nil {
		t.Fatalf("non-finite map built a quantized layout")
	}
	q := NewQuery(2)
	fp := Fingerprint{-60, -55}
	if _, ok := db.KNearestQuantAppend(nil, fp, 1, q); ok {
		t.Errorf("quantized path accepted an unquantizable map")
	}
	q.MaskLoc(2)
	got, ok := db.CandidatesMaskedAppend(nil, fp, 1, q)
	if !ok || len(got) != 1 || got[0].Loc != 2 {
		t.Errorf("masked exact fallback = %v ok=%v, want loc 2", got, ok)
	}
}

// TestMaskedZeroAllocs pins the gated steady state at zero heap
// allocations for both the quantized and the exact masked paths.
func TestMaskedZeroAllocs(t *testing.T) {
	db := randomDB(t, 512, 8, false)
	rng := stats.NewRNG(43)
	fp := randomScan(rng, 8)
	sat := append(Fingerprint{-300}, fp[1:]...) // forces the exact fallback
	q := NewQuery(512)
	for i := 0; i < 24; i++ {
		q.MaskLoc(rng.Intn(512) + 1)
	}
	buf, ok := db.CandidatesMaskedAppend(nil, fp, 8, q)
	if !ok {
		t.Fatalf("masked scan refused")
	}
	if avg := testing.AllocsPerRun(100, func() {
		buf, _ = db.CandidatesMaskedAppend(buf, fp, 8, q)
	}); avg != 0 {
		t.Errorf("quantized masked scan allocates %.1f per run, want 0", avg)
	}
	buf, _ = db.CandidatesMaskedAppend(buf, sat, 8, q)
	if avg := testing.AllocsPerRun(100, func() {
		buf, _ = db.CandidatesMaskedAppend(buf, sat, 8, q)
	}); avg != 0 {
		t.Errorf("exact masked fallback allocates %.1f per run, want 0", avg)
	}
	qbuf, _ := db.KNearestQuantAppend(nil, fp, 8, q)
	if avg := testing.AllocsPerRun(100, func() {
		qbuf, _ = db.KNearestQuantAppend(qbuf, fp, 8, q)
	}); avg != 0 {
		t.Errorf("full quantized scan allocates %.1f per run, want 0", avg)
	}
	// Mask maintenance itself must also settle to zero allocations.
	locs := make([]int, 24)
	for i := range locs {
		locs[i] = rng.Intn(512) + 1
	}
	if avg := testing.AllocsPerRun(100, func() {
		q.ResetMask()
		for _, l := range locs {
			q.MaskLoc(l)
		}
	}); avg != 0 {
		t.Errorf("mask reset+fill allocates %.1f per run, want 0", avg)
	}
}

// FuzzQuantVsExact cross-checks the quantized kernel against the exact
// reference on fuzz-chosen maps, scans, and masks: whenever the
// quantized path serves, its candidate set — locations, exact
// dissimilarities, probabilities, order — must equal the reference's.
func FuzzQuantVsExact(f *testing.F) {
	f.Add(int64(1), uint16(28), uint8(6), uint8(8), 0.0, uint8(0))
	f.Add(int64(2), uint16(130), uint8(3), uint8(4), -45.0, uint8(9))
	f.Add(int64(3), uint16(64), uint8(1), uint8(1), 30.0, uint8(200))
	f.Add(int64(4), uint16(513), uint8(8), uint8(16), 0.5, uint8(17))
	f.Fuzz(func(t *testing.T, seed int64, nn uint16, ww, kk uint8, off float64, mm uint8) {
		n := 1 + int(nn)%520
		w := 1 + int(ww)%8
		k := 1 + int(kk)%20
		if math.IsNaN(off) || math.IsInf(off, 0) || math.Abs(off) > 1e6 {
			off = 0
		}
		rng := stats.NewRNG(seed)
		samples := make([][]Fingerprint, n)
		for i := range samples {
			fp := make(Fingerprint, w)
			for a := range fp {
				fp[a] = rng.Uniform(-90, -30)
			}
			samples[i] = []Fingerprint{fp}
		}
		if n >= 4 {
			copy(samples[n-1][0], samples[1][0]) // force ties
		}
		db, err := NewDB(Euclidean{}, w, samples)
		if err != nil {
			t.Fatalf("NewDB: %v", err)
		}
		fp := make(Fingerprint, w)
		for a := range fp {
			fp[a] = rng.Uniform(-90, -30) + off // off can push past saturation
		}
		q := NewQuery(n)

		want := db.KNearestRef(fp, k)
		got, ok := db.KNearestQuantAppend(nil, fp, k, q)
		if ok && !candidatesEqual(got, want) {
			t.Fatalf("n=%d w=%d k=%d off=%g: quantized = %v, reference %v", n, w, k, off, got, want)
		}

		// Masked: fuzz a mask of mm locations and compare against the
		// filtered reference.
		for i := 0; i < int(mm)%40; i++ {
			q.MaskLoc(rng.Intn(n) + 1)
		}
		if q.MaskCount() > 0 {
			mwant := maskedRef(db.KNearestRef(fp, n), q, k)
			mgot, mok := db.CandidatesMaskedAppend(nil, fp, k, q)
			if !mok {
				t.Fatalf("masked scan refused a %d-location mask", q.MaskCount())
			}
			if !candidatesEqual(mgot, mwant) {
				t.Fatalf("n=%d w=%d k=%d mask=%d: masked = %v, filtered reference %v",
					n, w, k, q.MaskCount(), mgot, mwant)
			}
		}
	})
}
