package fingerprint

import (
	"math"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestEuclideanDistance(t *testing.T) {
	e := Euclidean{}
	tests := []struct {
		name string
		a, b Fingerprint
		want float64
	}{
		{"identical", Fingerprint{-50, -60}, Fingerprint{-50, -60}, 0},
		{"3-4-5", Fingerprint{0, 0}, Fingerprint{3, 4}, 5},
		{"single dim", Fingerprint{-40}, Fingerprint{-47}, 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := e.Distance(tt.a, tt.b); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Distance = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestEuclideanPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	Euclidean{}.Distance(Fingerprint{1}, Fingerprint{1, 2})
}

func TestMetricProperties(t *testing.T) {
	// Symmetry and identity for all metrics, over random vectors.
	metrics := []Metric{Euclidean{}, Manhattan{}, MatchedOnly{Missing: -100}}
	for _, m := range metrics {
		m := m
		f := func(a, b [4]float64) bool {
			fa := Fingerprint{a[0], a[1], a[2], a[3]}
			fb := Fingerprint{b[0], b[1], b[2], b[3]}
			for i := range fa {
				if math.IsNaN(fa[i]) || math.IsInf(fa[i], 0) ||
					math.IsNaN(fb[i]) || math.IsInf(fb[i], 0) {
					return true
				}
				fa[i] = math.Mod(fa[i], 100)
				fb[i] = math.Mod(fb[i], 100)
			}
			d1, d2 := m.Distance(fa, fb), m.Distance(fb, fa)
			if math.Abs(d1-d2) > 1e-9 {
				return false
			}
			return m.Distance(fa, fa) < 1e-9 || m.Name() == "matched-only"
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

func TestManhattan(t *testing.T) {
	m := Manhattan{}
	if got := m.Distance(Fingerprint{1, 2}, Fingerprint{4, -2}); got != 7 {
		t.Errorf("Manhattan = %v, want 7", got)
	}
}

func TestMatchedOnly(t *testing.T) {
	m := MatchedOnly{Missing: -100}
	// Second AP missing on one side: only first AP scored, scaled by dims.
	a := Fingerprint{-50, -100}
	b := Fingerprint{-53, -70}
	want := math.Sqrt(9.0 / 1 * 2)
	if got := m.Distance(a, b); math.Abs(got-want) > 1e-9 {
		t.Errorf("MatchedOnly = %v, want %v", got, want)
	}
	// No shared AP: large constant.
	if got := m.Distance(Fingerprint{-100, -50}, Fingerprint{-50, -100}); got != 1e6 {
		t.Errorf("disjoint = %v, want 1e6", got)
	}
}

func TestProject(t *testing.T) {
	f := Fingerprint{-10, -20, -30, -40}
	got := f.Project([]int{3, 0})
	if len(got) != 2 || got[0] != -40 || got[1] != -10 {
		t.Errorf("Project = %v", got)
	}
}

func TestClone(t *testing.T) {
	f := Fingerprint{-1, -2}
	c := f.Clone()
	c[0] = 99
	if f[0] != -1 {
		t.Error("Clone must not share backing array")
	}
}

func mustDB(t *testing.T) *DB {
	t.Helper()
	// Three locations, two APs each, one sample per location.
	samples := [][]Fingerprint{
		{{-40, -80}},
		{{-60, -60}},
		{{-80, -40}},
	}
	db, err := NewDB(Euclidean{}, 2, samples)
	if err != nil {
		t.Fatalf("NewDB: %v", err)
	}
	return db
}

func TestNewDBErrors(t *testing.T) {
	if _, err := NewDB(nil, 2, nil); err == nil {
		t.Error("nil metric should error")
	}
	if _, err := NewDB(Euclidean{}, 0, nil); err == nil {
		t.Error("zero APs should error")
	}
	if _, err := NewDB(Euclidean{}, 2, [][]Fingerprint{{}}); err == nil {
		t.Error("empty location samples should error")
	}
	if _, err := NewDB(Euclidean{}, 2, [][]Fingerprint{{{-40}}}); err == nil {
		t.Error("wrong sample width should error")
	}
}

func TestDBAveraging(t *testing.T) {
	samples := [][]Fingerprint{
		{{-40, -80}, {-44, -84}}, // mean (-42, -82)
	}
	db, err := NewDB(Euclidean{}, 2, samples)
	if err != nil {
		t.Fatal(err)
	}
	got := db.At(1)
	if got[0] != -42 || got[1] != -82 {
		t.Errorf("radio map mean = %v, want (-42, -82)", got)
	}
}

func TestNearest(t *testing.T) {
	db := mustDB(t)
	tests := []struct {
		name string
		f    Fingerprint
		want int
	}{
		{"clearly 1", Fingerprint{-41, -79}, 1},
		{"clearly 2", Fingerprint{-61, -59}, 2},
		{"clearly 3", Fingerprint{-79, -41}, 3},
		{"exact 2", Fingerprint{-60, -60}, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := db.Nearest(tt.f); got != tt.want {
				t.Errorf("Nearest = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestKNearest(t *testing.T) {
	db := mustDB(t)
	cands := db.KNearest(Fingerprint{-45, -75}, 2)
	if len(cands) != 2 {
		t.Fatalf("len = %d", len(cands))
	}
	if cands[0].Loc != 1 {
		t.Errorf("top candidate = %d, want 1", cands[0].Loc)
	}
	// Probabilities sum to 1 and are ordered with dissimilarity.
	if math.Abs(cands[0].Prob+cands[1].Prob-1) > 1e-12 {
		t.Errorf("probs sum to %v", cands[0].Prob+cands[1].Prob)
	}
	if cands[0].Prob <= cands[1].Prob {
		t.Error("nearer candidate should have higher probability")
	}
	// Eq. 4 exactly: prob_i = (1/m_i) / sum(1/m_j).
	wantP0 := (1 / cands[0].Dissim) / (1/cands[0].Dissim + 1/cands[1].Dissim)
	if math.Abs(cands[0].Prob-wantP0) > 1e-12 {
		t.Errorf("Eq.4 violated: %v vs %v", cands[0].Prob, wantP0)
	}
}

func TestKNearestExactMatch(t *testing.T) {
	db := mustDB(t)
	cands := db.KNearest(Fingerprint{-60, -60}, 3)
	if cands[0].Loc != 2 || cands[0].Prob != 1 {
		t.Errorf("exact match should take all mass: %+v", cands[0])
	}
	for _, c := range cands[1:] {
		if c.Prob != 0 {
			t.Errorf("non-exact candidate has prob %v", c.Prob)
		}
	}
}

func TestKNearestClamp(t *testing.T) {
	db := mustDB(t)
	if got := db.KNearest(Fingerprint{-50, -50}, 100); len(got) != 3 {
		t.Errorf("k should clamp to 3, got %d", len(got))
	}
	if got := db.KNearest(Fingerprint{-50, -50}, 0); got != nil {
		t.Errorf("k=0 should return nil, got %v", got)
	}
}

func TestKNearestProbsSumToOne(t *testing.T) {
	db := mustDB(t)
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		fp := Fingerprint{-40 - math.Mod(math.Abs(a), 60), -40 - math.Mod(math.Abs(b), 60)}
		cands := db.KNearest(fp, 3)
		var sum float64
		for _, c := range cands {
			if c.Prob < 0 || c.Prob > 1 {
				return false
			}
			sum += c.Prob
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProjectAPs(t *testing.T) {
	db := mustDB(t)
	p, err := db.ProjectAPs([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumAPs() != 1 || p.NumLocs() != 3 {
		t.Errorf("projected dims = %d APs, %d locs", p.NumAPs(), p.NumLocs())
	}
	if got := p.At(1)[0]; got != -80 {
		t.Errorf("projected fp = %v, want -80", got)
	}
	if _, err := db.ProjectAPs([]int{5}); err == nil {
		t.Error("out-of-range AP index should error")
	}
}

func TestDBJSONRoundTrip(t *testing.T) {
	db := mustDB(t)
	path := filepath.Join(t.TempDir(), "db.json")
	if err := db.SaveJSON(path); err != nil {
		t.Fatalf("SaveJSON: %v", err)
	}
	got, err := LoadJSON(path)
	if err != nil {
		t.Fatalf("LoadJSON: %v", err)
	}
	if got.NumLocs() != db.NumLocs() || got.NumAPs() != db.NumAPs() {
		t.Error("round trip changed dimensions")
	}
	if got.Metric().Name() != "euclidean" {
		t.Errorf("metric = %s", got.Metric().Name())
	}
	for loc := 1; loc <= 3; loc++ {
		a, b := db.At(loc), got.At(loc)
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("loc %d AP %d: %v != %v", loc, i, a[i], b[i])
			}
		}
	}
}

func TestLoadJSONErrors(t *testing.T) {
	if _, err := LoadJSON(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should error")
	}
}

func TestRollingMap(t *testing.T) {
	db := mustDB(t)
	if _, err := NewRollingMap(db, 0); err == nil {
		t.Error("zero capacity should error")
	}
	r, err := NewRollingMap(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Seeded with the surveyed vectors: the first snapshot equals the
	// surveyed map.
	snap, err := r.Snapshot(Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	for loc := 1; loc <= 3; loc++ {
		a, b := db.At(loc), snap.At(loc)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seeded snapshot differs at loc %d", loc)
			}
		}
	}
	// Feeding drifted scans moves the mean toward them.
	for k := 0; k < 3; k++ {
		if err := r.Add(1, Fingerprint{-50, -90}); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len(1) != 3 {
		t.Errorf("buffer len = %d, want 3 (capacity)", r.Len(1))
	}
	snap, err = r.Snapshot(Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	if snap.At(1)[0] != -50 {
		t.Errorf("rolled-over mean = %v, want -50 (old seed evicted)", snap.At(1)[0])
	}
	// Error paths.
	if err := r.Add(0, Fingerprint{-1, -2}); err == nil {
		t.Error("bad location should error")
	}
	if err := r.Add(1, Fingerprint{-1}); err == nil {
		t.Error("bad width should error")
	}
}

func TestRollingMapDoesNotAliasInput(t *testing.T) {
	db := mustDB(t)
	r, err := NewRollingMap(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	fp := Fingerprint{-55, -66}
	if err := r.Add(2, fp); err != nil {
		t.Fatal(err)
	}
	fp[0] = 0 // caller mutates after Add
	snap, err := r.Snapshot(Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	// Mean of seed (-60) and stored copy (-55): mutation must not leak.
	if got := snap.At(2)[0]; got != (-60-55)/2.0 {
		t.Errorf("aliased input leaked: %v", got)
	}
}
