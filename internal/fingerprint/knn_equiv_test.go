package fingerprint

import (
	"testing"

	"moloc/internal/stats"
)

// randomDB builds a radio map of n locations with w APs from seeded
// noise, optionally duplicating some rows to force dissimilarity ties.
func randomDB(t *testing.T, n, w int, ties bool) *DB {
	t.Helper()
	rng := stats.NewRNG(42)
	samples := make([][]Fingerprint, n)
	for i := range samples {
		fp := make(Fingerprint, w)
		for a := range fp {
			fp[a] = rng.Uniform(-90, -30)
		}
		samples[i] = []Fingerprint{fp}
	}
	if ties && n >= 4 {
		copy(samples[n-1][0], samples[1][0]) // exact twin: guaranteed ties
		copy(samples[n-2][0], samples[2][0])
	}
	db, err := NewDB(Euclidean{}, w, samples)
	if err != nil {
		t.Fatalf("NewDB: %v", err)
	}
	return db
}

func randomScan(rng *stats.RNG, w int) Fingerprint {
	fp := make(Fingerprint, w)
	for a := range fp {
		fp[a] = rng.Uniform(-90, -30)
	}
	return fp
}

// quantInRange reports whether every component of f quantizes without
// saturating the int8 code range of db's quantized layout.
func quantInRange(db *DB, f Fingerprint) bool {
	qm := db.quant
	if qm == nil {
		return false
	}
	for _, v := range f {
		c := (v - qm.mid) * qm.inv
		if !(c >= -127.5 && c <= 127.5) {
			return false
		}
	}
	return true
}

func candidatesEqual(a, b []Candidate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestKNearestAppendMatchesRef checks value-exact equivalence between
// the selection-scan fast path and the sort-based reference, across
// sizes, k values, tie-heavy maps, and exact radio-map matches.
func TestKNearestAppendMatchesRef(t *testing.T) {
	rng := stats.NewRNG(7)
	for _, n := range []int{1, 2, 5, 28, 160} {
		for _, ties := range []bool{false, true} {
			db := randomDB(t, n, 6, ties)
			var buf []Candidate
			for _, k := range []int{1, 2, 3, 8, n, n + 5} {
				for trial := 0; trial < 20; trial++ {
					var fp Fingerprint
					if trial%5 == 0 {
						fp = db.At(rng.Intn(n) + 1) // exact match path
					} else {
						fp = randomScan(rng, 6)
					}
					want := db.KNearestRef(fp, k)
					got := db.KNearest(fp, k)
					if !candidatesEqual(got, want) {
						t.Fatalf("n=%d ties=%v k=%d: KNearest = %v, reference %v",
							n, ties, k, got, want)
					}
					buf = db.KNearestAppend(buf, fp, k)
					if !candidatesEqual(buf, want) {
						t.Fatalf("n=%d ties=%v k=%d: KNearestAppend = %v, reference %v",
							n, ties, k, buf, want)
					}
				}
			}
		}
	}
}

// TestGaussianCandidatesAppendMatchesRef is the same equivalence for
// the probabilistic source.
func TestGaussianCandidatesAppendMatchesRef(t *testing.T) {
	rng := stats.NewRNG(11)
	samples := make([][]Fingerprint, 28)
	for i := range samples {
		scans := make([]Fingerprint, 3)
		for s := range scans {
			scans[s] = randomScan(rng, 6)
		}
		samples[i] = scans
	}
	g, err := NewGaussianDB(6, samples)
	if err != nil {
		t.Fatalf("NewGaussianDB: %v", err)
	}
	var buf []Candidate
	for _, k := range []int{1, 4, 8, 28, 40} {
		for trial := 0; trial < 20; trial++ {
			fp := randomScan(rng, 6)
			want := g.CandidatesRef(fp, k)
			got := g.Candidates(fp, k)
			if !candidatesEqual(got, want) {
				t.Fatalf("k=%d: Candidates = %v, reference %v", k, got, want)
			}
			buf = g.CandidatesAppend(buf, fp, k)
			if !candidatesEqual(buf, want) {
				t.Fatalf("k=%d: CandidatesAppend = %v, reference %v", k, buf, want)
			}
		}
	}
}

// TestKNearestQuantMatchesRef extends the equivalence suite to the
// quantized blocked-SoA kernel: the full-map quantized scan must be
// value-identical — dissimilarities, probabilities, and ordering, ties
// included — to the sort-based reference, across sizes that exercise
// partial trailing blocks (n % 64 != 0), multi-block maps, tie-heavy
// maps, and exact radio-map matches.
func TestKNearestQuantMatchesRef(t *testing.T) {
	rng := stats.NewRNG(19)
	for _, n := range []int{1, 2, 5, 28, 64, 65, 160, 300} {
		for _, ties := range []bool{false, true} {
			db := randomDB(t, n, 6, ties)
			if db.quant == nil {
				t.Fatalf("n=%d: Euclidean map did not build a quantized layout", n)
			}
			q := NewQuery(n)
			var buf []Candidate
			for _, k := range []int{1, 2, 3, 8, n, n + 5} {
				for trial := 0; trial < 20; trial++ {
					var fp Fingerprint
					if trial%5 == 0 {
						fp = db.At(rng.Intn(n) + 1) // exact match path
					} else {
						fp = randomScan(rng, 6)
					}
					want := db.KNearestRef(fp, k)
					var ok bool
					buf, ok = db.KNearestQuantAppend(buf, fp, k, q)
					if !ok {
						// Refusal is legal only when a component really
						// saturates (tiny maps leave little range headroom).
						if quantInRange(db, fp) {
							t.Fatalf("n=%d ties=%v k=%d: quantized path refused an in-range scan", n, ties, k)
						}
						continue
					}
					if !candidatesEqual(buf, want) {
						t.Fatalf("n=%d ties=%v k=%d: KNearestQuantAppend = %v, reference %v",
							n, ties, k, buf, want)
					}
				}
			}
		}
	}
}

// TestMaskedCandidatesMatchFilteredRef checks the masked scans of both
// sources against the executable specification: run the reference over
// the full map, keep only masked locations, take the top k, and
// re-normalize probabilities over that subset.
func TestMaskedCandidatesMatchFilteredRef(t *testing.T) {
	rng := stats.NewRNG(23)
	for _, ties := range []bool{false, true} {
		db := randomDB(t, 160, 6, ties)
		q := NewQuery(160)
		var buf []Candidate
		for trial := 0; trial < 30; trial++ {
			q.ResetMask()
			nMask := 1 + rng.Intn(30)
			for i := 0; i < nMask; i++ {
				q.MaskLoc(rng.Intn(160) + 1)
			}
			fp := randomScan(rng, 6)
			if trial%6 == 0 {
				fp = db.At(rng.Intn(160) + 1)
			}
			for _, k := range []int{1, 3, 8, q.MaskCount(), q.MaskCount() + 4} {
				want := maskedRef(db.KNearestRef(fp, 160), q, k)
				var ok bool
				buf, ok = db.CandidatesMaskedAppend(buf, fp, k, q)
				if !ok {
					t.Fatalf("masked scan refused a %d-location mask", q.MaskCount())
				}
				if !candidatesEqual(buf, want) {
					t.Fatalf("ties=%v k=%d mask=%d: masked = %v, filtered reference %v",
						ties, k, q.MaskCount(), buf, want)
				}
			}
		}
	}
}

// maskedRef filters a full reference ranking to the mask, truncates to
// k, and re-derives the Eq. 4 probabilities over the subset.
func maskedRef(all []Candidate, q *Query, k int) []Candidate {
	var kept []Candidate
	for _, c := range all {
		if q.Masked(c.Loc) {
			kept = append(kept, c)
		}
	}
	if k > len(kept) {
		k = len(kept)
	}
	kept = kept[:k]
	assignProbs(kept)
	return kept
}

// TestGaussianMaskedMatchesFilteredRef is the masked equivalence for
// the probabilistic source, with softmax renormalization over the
// masked subset.
func TestGaussianMaskedMatchesFilteredRef(t *testing.T) {
	rng := stats.NewRNG(29)
	samples := make([][]Fingerprint, 100)
	for i := range samples {
		scans := make([]Fingerprint, 3)
		for s := range scans {
			scans[s] = randomScan(rng, 6)
		}
		samples[i] = scans
	}
	g, err := NewGaussianDB(6, samples)
	if err != nil {
		t.Fatalf("NewGaussianDB: %v", err)
	}
	q := NewQuery(100)
	var buf []Candidate
	for trial := 0; trial < 30; trial++ {
		q.ResetMask()
		for i := 0; i < 1+rng.Intn(20); i++ {
			q.MaskLoc(rng.Intn(100) + 1)
		}
		fp := randomScan(rng, 6)
		for _, k := range []int{1, 4, q.MaskCount() + 2} {
			all := g.CandidatesRef(fp, 100)
			var kept []Candidate
			for _, c := range all {
				if q.Masked(c.Loc) {
					kept = append(kept, c)
				}
			}
			kk := k
			if kk > len(kept) {
				kk = len(kept)
			}
			want := kept[:kk]
			softmaxProbs(want)
			var ok bool
			buf, ok = g.CandidatesMaskedAppend(buf, fp, k, q)
			if !ok {
				t.Fatalf("gaussian masked scan refused a %d-location mask", q.MaskCount())
			}
			if !candidatesEqual(buf, want) {
				t.Fatalf("k=%d mask=%d: masked = %v, filtered reference %v",
					k, q.MaskCount(), buf, want)
			}
		}
	}
}

// TestKNearestRightSized guards the satellite fix: the slice KNearest
// returns must not pin an n-candidate scratch array.
func TestKNearestRightSized(t *testing.T) {
	db := randomDB(t, 160, 6, false)
	fp := randomScan(stats.NewRNG(3), 6)
	for _, k := range []int{1, 8, 32} {
		got := db.KNearest(fp, k)
		if cap(got) > 2*k {
			t.Errorf("KNearest(k=%d) capacity %d pins scratch", k, cap(got))
		}
	}
	if got := db.KNearestRef(fp, 8); cap(got) > 16 {
		t.Errorf("KNearestRef capacity %d pins the full scratch array", cap(got))
	}
}

// TestKNearestAppendZeroAllocs pins the steady-state query at zero
// heap allocations for both sources.
func TestKNearestAppendZeroAllocs(t *testing.T) {
	db := randomDB(t, 160, 6, false)
	fp := randomScan(stats.NewRNG(5), 6)
	buf := db.KNearestAppend(nil, fp, 8)
	if avg := testing.AllocsPerRun(100, func() {
		buf = db.KNearestAppend(buf, fp, 8)
	}); avg != 0 {
		t.Errorf("KNearestAppend allocates %.1f per run, want 0", avg)
	}

	rng := stats.NewRNG(6)
	samples := make([][]Fingerprint, 28)
	for i := range samples {
		samples[i] = []Fingerprint{randomScan(rng, 6), randomScan(rng, 6)}
	}
	g, err := NewGaussianDB(6, samples)
	if err != nil {
		t.Fatalf("NewGaussianDB: %v", err)
	}
	gbuf := g.CandidatesAppend(nil, fp, 8)
	if avg := testing.AllocsPerRun(100, func() {
		gbuf = g.CandidatesAppend(gbuf, fp, 8)
	}); avg != 0 {
		t.Errorf("CandidatesAppend allocates %.1f per run, want 0", avg)
	}
}
