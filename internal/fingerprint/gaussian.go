package fingerprint

import (
	"fmt"
	"math"
	"sort"

	"moloc/internal/stats"
)

// CandidateSource produces ranked location candidates for a
// fingerprint. Both the deterministic radio map (DB, Eq. 3–4) and the
// probabilistic GaussianDB implement it, so MoLoc's candidate
// evaluation runs unchanged over either — the paper's point that it is
// compatible with existing fingerprinting systems "regardless of
// fingerprint types".
type CandidateSource interface {
	NumLocs() int
	// Candidates returns the k most plausible locations for f with
	// probabilities summing to 1, most probable first.
	Candidates(f Fingerprint, k int) []Candidate
}

// CandidateAppender is the allocation-free extension of
// CandidateSource: CandidatesAppend selects into a caller-provided
// buffer, reusing its capacity, so steady-state queries on the serving
// hot path allocate nothing. Both built-in sources implement it; the
// localizer detects it at construction and falls back to Candidates
// for third-party sources.
type CandidateAppender interface {
	CandidateSource
	// CandidatesAppend fills dst (which may be nil) with the k most
	// plausible locations for f, exactly as Candidates would, and
	// returns the filled slice.
	CandidatesAppend(dst []Candidate, f Fingerprint, k int) []Candidate
}

var (
	_ CandidateAppender = (*DB)(nil)
	_ CandidateAppender = (*GaussianDB)(nil)
)

// Candidates implements CandidateSource for the deterministic radio
// map via Eq. 3–4.
func (db *DB) Candidates(f Fingerprint, k int) []Candidate {
	return db.KNearest(f, k)
}

// CandidatesAppend implements CandidateAppender for the deterministic
// radio map.
func (db *DB) CandidatesAppend(dst []Candidate, f Fingerprint, k int) []Candidate {
	return db.KNearestAppend(dst, f, k)
}

// GaussianDB is a Horus-style probabilistic radio map: per location and
// AP it stores the Gaussian of the observed RSS, and location estimates
// maximize the joint likelihood of a scan. It is the classic
// alternative to deterministic nearest-neighbor matching (Youssef &
// Agrawala, MobiSys 2005), provided here as an additional baseline and
// as a second candidate source for MoLoc.
type GaussianDB struct {
	numAPs int
	mean   [][]float64 // [loc][ap]
	std    [][]float64 // [loc][ap], floored
}

// MinGaussianStd floors the per-AP standard deviations so a location
// whose survey samples happened to be identical cannot produce an
// infinitely spiky likelihood.
const MinGaussianStd = 1.5

// NewGaussianDB fits per-location, per-AP Gaussians to the survey
// samples. samples[i] holds the scans of location i+1.
func NewGaussianDB(numAPs int, samples [][]Fingerprint) (*GaussianDB, error) {
	if numAPs <= 0 {
		return nil, fmt.Errorf("fingerprint: numAPs must be positive, got %d", numAPs)
	}
	g := &GaussianDB{
		numAPs: numAPs,
		mean:   make([][]float64, len(samples)),
		std:    make([][]float64, len(samples)),
	}
	for i, scans := range samples {
		if len(scans) == 0 {
			return nil, fmt.Errorf("fingerprint: location %d has no survey samples", i+1)
		}
		g.mean[i] = make([]float64, numAPs)
		g.std[i] = make([]float64, numAPs)
		for ap := 0; ap < numAPs; ap++ {
			var o stats.Online
			for _, s := range scans {
				if len(s) != numAPs {
					return nil, fmt.Errorf("fingerprint: location %d sample has %d APs, want %d",
						i+1, len(s), numAPs)
				}
				o.Add(s[ap])
			}
			g.mean[i][ap] = o.Mean()
			g.std[i][ap] = math.Max(o.StdDev(), MinGaussianStd)
		}
	}
	return g, nil
}

// NumLocs returns the number of reference locations.
func (g *GaussianDB) NumLocs() int { return len(g.mean) }

// NumAPs returns the fingerprint dimensionality.
func (g *GaussianDB) NumAPs() int { return g.numAPs }

// LogLikelihood returns the log of the joint Gaussian likelihood of f
// at the location with the given 1-based ID, assuming per-AP
// independence as Horus does.
func (g *GaussianDB) LogLikelihood(loc int, f Fingerprint) float64 {
	if len(f) != g.numAPs {
		panic(fmt.Sprintf("fingerprint: scan has %d APs, database %d", len(f), g.numAPs))
	}
	m, s := g.mean[loc-1], g.std[loc-1]
	var ll float64
	for ap := range f {
		z := (f[ap] - m[ap]) / s[ap]
		ll += -0.5*z*z - math.Log(s[ap])
	}
	return ll
}

// MostLikely returns the maximum-likelihood location for a scan.
func (g *GaussianDB) MostLikely(f Fingerprint) int {
	best, bestLL := 0, math.Inf(-1)
	for loc := 1; loc <= g.NumLocs(); loc++ {
		if ll := g.LogLikelihood(loc, f); ll > bestLL {
			best, bestLL = loc, ll
		}
	}
	return best
}

// Candidates implements CandidateSource: the k most likely locations
// with their normalized posterior probabilities (uniform prior). The
// Dissim field carries the negative log-likelihood so lower remains
// better, as with the deterministic source. The returned slice is
// freshly allocated and right-sized.
func (g *GaussianDB) Candidates(f Fingerprint, k int) []Candidate {
	if k <= 0 {
		return nil
	}
	return g.CandidatesAppend(nil, f, k)
}

// CandidatesAppend implements CandidateAppender: Candidates into a
// reused buffer via a bounded selection scan, allocation-free at
// steady state.
//
//moloc:hotpath
func (g *GaussianDB) CandidatesAppend(dst []Candidate, f Fingerprint, k int) []Candidate {
	n := g.NumLocs()
	if k > n {
		k = n
	}
	if k <= 0 {
		return dst[:0]
	}
	if cap(dst) < k {
		dst = make([]Candidate, 0, k)
	} else {
		dst = dst[:0]
	}
	// Selection scan ordered by (negative log-likelihood, location),
	// identical to CandidatesRef's sort; see DB.KNearestAppend.
	m := 0
	worst := math.Inf(1)
	for i := 0; i < n; i++ {
		d := -g.LogLikelihood(i+1, f)
		if m == k && d >= worst {
			continue
		}
		if m < k {
			m++
			dst = dst[:m]
		}
		j := m - 1
		for j > 0 && dst[j-1].Dissim > d {
			dst[j] = dst[j-1]
			j--
		}
		dst[j] = Candidate{Loc: i + 1, Dissim: d}
		worst = dst[m-1].Dissim
	}
	softmaxProbs(dst)
	return dst
}

// CandidatesRef is the pre-compilation reference implementation of
// Candidates — score every location, sort, slice — retained as the
// executable specification for equivalence tests and benchmarks.
func (g *GaussianDB) CandidatesRef(f Fingerprint, k int) []Candidate {
	if k <= 0 {
		return nil
	}
	if k > g.NumLocs() {
		k = g.NumLocs()
	}
	all := make([]Candidate, g.NumLocs())
	for i := range all {
		all[i] = Candidate{Loc: i + 1, Dissim: -g.LogLikelihood(i+1, f)}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Dissim != all[b].Dissim {
			return all[a].Dissim < all[b].Dissim
		}
		return all[a].Loc < all[b].Loc
	})
	top := append([]Candidate(nil), all[:k]...)
	softmaxProbs(top)
	return top
}

// softmaxProbs fills the probabilities of a sorted candidate set whose
// Dissim fields carry negative log-likelihoods: a softmax anchored at
// the best for numerical stability.
//
//moloc:hotpath
func softmaxProbs(top []Candidate) {
	if len(top) == 0 {
		return
	}
	best := -top[0].Dissim
	var norm float64
	for i := range top {
		p := math.Exp(-top[i].Dissim - best)
		top[i].Prob = p
		norm += p
	}
	for i := range top {
		top[i].Prob /= norm
	}
}

// ProjectAPs returns a new GaussianDB restricted to the given AP
// indices.
func (g *GaussianDB) ProjectAPs(apIdx []int) (*GaussianDB, error) {
	for _, a := range apIdx {
		if a < 0 || a >= g.numAPs {
			return nil, fmt.Errorf("fingerprint: AP index %d out of range [0,%d)", a, g.numAPs)
		}
	}
	out := &GaussianDB{
		numAPs: len(apIdx),
		mean:   make([][]float64, len(g.mean)),
		std:    make([][]float64, len(g.std)),
	}
	for i := range g.mean {
		out.mean[i] = make([]float64, len(apIdx))
		out.std[i] = make([]float64, len(apIdx))
		for j, a := range apIdx {
			out.mean[i][j] = g.mean[i][a]
			out.std[i][j] = g.std[i][a]
		}
	}
	return out, nil
}
