package fingerprint

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// Candidate is a location candidate returned by a k-NN query: a
// reference location ID, its fingerprint dissimilarity m_i, and the
// probability of Eq. 4, P(x = l_i | F) = (1/m_i) / sum_j (1/m_j).
type Candidate struct {
	Loc    int     `json:"loc"`
	Dissim float64 `json:"dissim"`
	Prob   float64 `json:"prob"`
}

// DB is the fingerprint database (radio map): one representative
// fingerprint per reference location, built by averaging site-survey
// samples. Location IDs are 1-based and contiguous.
//
// The radio map is stored as one contiguous row-major []float64 so the
// k-NN distance scan of Eq. 3 streams through memory instead of
// chasing per-location slice headers; fps holds per-location views
// into it for the At/Metric APIs.
type DB struct {
	metric Metric
	numAPs int
	// flat is the row-major radio map: location i+1 occupies
	// flat[i*numAPs : (i+1)*numAPs].
	flat []float64
	// fps[i] is the radio-map fingerprint of location i+1, a view into
	// flat.
	fps []Fingerprint
	// quant is the int8 blocked-SoA companion of flat used by the
	// quantized distance kernel (quant.go); nil when the metric is not
	// Euclidean or the map cannot be quantized.
	quant *quantMap
}

// initFlat installs the contiguous radio map, carves the per-location
// views, and — for the Euclidean metric — builds the quantized
// blocked-SoA companion the masked/quantized kernels scan.
func (db *DB) initFlat(flat []float64, n int) {
	db.flat = flat
	db.fps = make([]Fingerprint, n)
	for i := 0; i < n; i++ {
		db.fps[i] = Fingerprint(flat[i*db.numAPs : (i+1)*db.numAPs : (i+1)*db.numAPs])
	}
	if _, euclid := db.metric.(Euclidean); euclid {
		db.quant = buildQuant(flat, n, db.numAPs)
	}
}

// NewDB builds a radio map from per-location survey samples:
// samples[i] holds the scans collected at location i+1, each of length
// numAPs. The representative fingerprint is the per-AP mean, the
// standard radio-map construction (RADAR). Every location needs at
// least one sample.
func NewDB(metric Metric, numAPs int, samples [][]Fingerprint) (*DB, error) {
	if metric == nil {
		return nil, fmt.Errorf("fingerprint: nil metric")
	}
	if numAPs <= 0 {
		return nil, fmt.Errorf("fingerprint: numAPs must be positive, got %d", numAPs)
	}
	db := &DB{metric: metric, numAPs: numAPs}
	flat := make([]float64, len(samples)*numAPs)
	for i, scans := range samples {
		if len(scans) == 0 {
			return nil, fmt.Errorf("fingerprint: location %d has no survey samples", i+1)
		}
		mean := flat[i*numAPs : (i+1)*numAPs]
		for _, s := range scans {
			if len(s) != numAPs {
				return nil, fmt.Errorf("fingerprint: location %d sample has %d APs, want %d", i+1, len(s), numAPs)
			}
			for a, v := range s {
				mean[a] += v
			}
		}
		for a := range mean {
			mean[a] /= float64(len(scans))
		}
	}
	db.initFlat(flat, len(samples))
	return db, nil
}

// NumLocs returns the number of reference locations.
func (db *DB) NumLocs() int { return len(db.fps) }

// NumAPs returns the fingerprint dimensionality.
func (db *DB) NumAPs() int { return db.numAPs }

// Metric returns the dissimilarity metric in use.
func (db *DB) Metric() Metric { return db.metric }

// At returns the radio-map fingerprint of a location (1-based ID). The
// returned slice must not be modified.
func (db *DB) At(loc int) Fingerprint { return db.fps[loc-1] }

// Nearest implements Eq. 2: the location whose radio-map fingerprint is
// least dissimilar to f.
func (db *DB) Nearest(f Fingerprint) int {
	best, bestD := 0, 0.0
	for i, rm := range db.fps {
		d := db.metric.Distance(f, rm)
		if best == 0 || d < bestD {
			best, bestD = i+1, d
		}
	}
	return best
}

// KNearest implements Eq. 3–4: the k locations with the smallest
// dissimilarities to f, each with probability proportional to the
// inverse of its dissimilarity. If any dissimilarity is zero (an exact
// radio-map match), that candidate takes probability 1 and the rest 0,
// the limit of the 1/m weighting. Candidates are sorted by descending
// probability. k is clamped to the number of locations.
//
// The returned slice is freshly allocated and right-sized, so holding
// a candidate set never pins the full radio map's worth of scratch.
// Steady-state callers should prefer KNearestAppend with a reused
// buffer.
func (db *DB) KNearest(f Fingerprint, k int) []Candidate {
	if k <= 0 {
		return nil
	}
	return db.KNearestAppend(nil, f, k)
}

// KNearestAppend is KNearest into a caller-provided buffer: the top-k
// candidates are selected into dst (reusing its capacity; dst may be
// nil) with a bounded selection scan instead of a full sort, so a
// steady-state query allocates nothing. It returns the filled slice,
// which is sorted and weighted exactly as KNearest's.
//
//moloc:hotpath
func (db *DB) KNearestAppend(dst []Candidate, f Fingerprint, k int) []Candidate {
	n := len(db.fps)
	if k > n {
		k = n
	}
	if k <= 0 {
		return dst[:0]
	}
	if cap(dst) < k {
		dst = make([]Candidate, 0, k)
	} else {
		dst = dst[:0]
	}
	mustSameLen(f, db.fps[0])

	// Selection scan: dst[:m] holds the current best, sorted by
	// (dissimilarity, location). Scanning locations in ascending order
	// makes the strict shift condition reproduce the reference sort's
	// deterministic tie-break for free.
	_, euclid := db.metric.(Euclidean)
	w := db.numAPs
	m := 0
	worst := math.Inf(1)
	for i := 0; i < n; i++ {
		var d float64
		if euclid {
			// Inlined Eq. 1 over the contiguous row: the common metric
			// skips the interface call in the innermost loop.
			row := db.flat[i*w : i*w+w]
			var s float64
			for a, v := range f {
				dv := v - row[a]
				s += dv * dv
			}
			d = math.Sqrt(s)
		} else {
			d = db.metric.Distance(f, db.fps[i])
		}
		if m == k && d >= worst {
			continue
		}
		if m < k {
			m++
			dst = dst[:m]
		}
		j := m - 1
		for j > 0 && dst[j-1].Dissim > d {
			dst[j] = dst[j-1]
			j--
		}
		dst[j] = Candidate{Loc: i + 1, Dissim: d}
		worst = dst[m-1].Dissim
	}
	assignProbs(dst)
	return dst
}

// KNearestRef is the pre-compilation reference implementation of
// KNearest — score every location, sort, slice — retained as the
// executable specification: equivalence tests and benchmarks compare
// the selection-scan fast path against it.
func (db *DB) KNearestRef(f Fingerprint, k int) []Candidate {
	if k <= 0 {
		return nil
	}
	if k > len(db.fps) {
		k = len(db.fps)
	}
	all := make([]Candidate, len(db.fps))
	for i, rm := range db.fps {
		all[i] = Candidate{Loc: i + 1, Dissim: db.metric.Distance(f, rm)}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Dissim != all[b].Dissim {
			return all[a].Dissim < all[b].Dissim
		}
		return all[a].Loc < all[b].Loc // deterministic tie-break
	})
	top := append([]Candidate(nil), all[:k]...) // right-sized: don't pin the n-candidate scratch
	assignProbs(top)
	return top
}

// assignProbs fills the Eq. 4 probabilities of a sorted candidate set,
// with the exact-match limit: any zero dissimilarity takes the whole
// mass (split evenly among multiple exact matches).
//
//moloc:hotpath
func assignProbs(top []Candidate) {
	exact := false
	for _, c := range top {
		if c.Dissim == 0 {
			exact = true
			break
		}
	}
	if exact {
		for i := range top {
			if top[i].Dissim == 0 {
				top[i].Prob = 1
			} else {
				top[i].Prob = 0
			}
		}
		var total float64
		for _, c := range top {
			total += c.Prob
		}
		for i := range top {
			top[i].Prob /= total
		}
		return
	}
	var invSum float64
	for _, c := range top {
		invSum += 1 / c.Dissim
	}
	for i := range top {
		top[i].Prob = (1 / top[i].Dissim) / invSum
	}
}

// ProjectAPs returns a new DB restricted to the given AP indices,
// reusing the same metric. The AP-count sweeps build a 4- and 5-AP
// database from the 6-AP survey this way, mirroring the paper's use of
// one survey for all settings.
func (db *DB) ProjectAPs(apIdx []int) (*DB, error) {
	for _, a := range apIdx {
		if a < 0 || a >= db.numAPs {
			return nil, fmt.Errorf("fingerprint: AP index %d out of range [0,%d)", a, db.numAPs)
		}
	}
	out := &DB{metric: db.metric, numAPs: len(apIdx)}
	flat := make([]float64, len(db.fps)*len(apIdx))
	for i, fp := range db.fps {
		row := flat[i*len(apIdx):]
		for j, a := range apIdx {
			row[j] = fp[a]
		}
	}
	out.initFlat(flat, len(db.fps))
	return out, nil
}

// dbJSON is the serialized form of DB.
type dbJSON struct {
	Metric string        `json:"metric"`
	NumAPs int           `json:"num_aps"`
	Fps    []Fingerprint `json:"fingerprints"`
}

// SaveJSON writes the radio map to a file. Only the metric name is
// stored; LoadJSON restores the built-in metrics by name.
func (db *DB) SaveJSON(path string) error {
	data, err := json.MarshalIndent(dbJSON{
		Metric: db.metric.Name(), NumAPs: db.numAPs, Fps: db.fps,
	}, "", " ")
	if err != nil {
		return fmt.Errorf("fingerprint: marshal: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("fingerprint: write %s: %w", path, err)
	}
	return nil
}

// LoadJSON reads a radio map written by SaveJSON.
func LoadJSON(path string) (*DB, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fingerprint: read %s: %w", path, err)
	}
	var j dbJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("fingerprint: parse %s: %w", path, err)
	}
	var metric Metric
	switch j.Metric {
	case Euclidean{}.Name():
		metric = Euclidean{}
	case Manhattan{}.Name():
		metric = Manhattan{}
	case (MatchedOnly{}).Name():
		metric = MatchedOnly{Missing: -100}
	default:
		return nil, fmt.Errorf("fingerprint: unknown metric %q", j.Metric)
	}
	if j.NumAPs < 0 {
		return nil, fmt.Errorf("fingerprint: negative AP count %d", j.NumAPs)
	}
	flat := make([]float64, len(j.Fps)*j.NumAPs)
	for i, fp := range j.Fps {
		if len(fp) != j.NumAPs {
			return nil, fmt.Errorf("fingerprint: location %d has %d APs, header says %d", i+1, len(fp), j.NumAPs)
		}
		copy(flat[i*j.NumAPs:], fp)
	}
	db := &DB{metric: metric, numAPs: j.NumAPs}
	db.initFlat(flat, len(j.Fps))
	return db, nil
}
