package fingerprint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Candidate is a location candidate returned by a k-NN query: a
// reference location ID, its fingerprint dissimilarity m_i, and the
// probability of Eq. 4, P(x = l_i | F) = (1/m_i) / sum_j (1/m_j).
type Candidate struct {
	Loc    int     `json:"loc"`
	Dissim float64 `json:"dissim"`
	Prob   float64 `json:"prob"`
}

// DB is the fingerprint database (radio map): one representative
// fingerprint per reference location, built by averaging site-survey
// samples. Location IDs are 1-based and contiguous.
type DB struct {
	metric Metric
	numAPs int
	// fps[i] is the radio-map fingerprint of location i+1.
	fps []Fingerprint
}

// NewDB builds a radio map from per-location survey samples:
// samples[i] holds the scans collected at location i+1, each of length
// numAPs. The representative fingerprint is the per-AP mean, the
// standard radio-map construction (RADAR). Every location needs at
// least one sample.
func NewDB(metric Metric, numAPs int, samples [][]Fingerprint) (*DB, error) {
	if metric == nil {
		return nil, fmt.Errorf("fingerprint: nil metric")
	}
	if numAPs <= 0 {
		return nil, fmt.Errorf("fingerprint: numAPs must be positive, got %d", numAPs)
	}
	db := &DB{metric: metric, numAPs: numAPs, fps: make([]Fingerprint, len(samples))}
	for i, scans := range samples {
		if len(scans) == 0 {
			return nil, fmt.Errorf("fingerprint: location %d has no survey samples", i+1)
		}
		mean := make(Fingerprint, numAPs)
		for _, s := range scans {
			if len(s) != numAPs {
				return nil, fmt.Errorf("fingerprint: location %d sample has %d APs, want %d", i+1, len(s), numAPs)
			}
			for a, v := range s {
				mean[a] += v
			}
		}
		for a := range mean {
			mean[a] /= float64(len(scans))
		}
		db.fps[i] = mean
	}
	return db, nil
}

// NumLocs returns the number of reference locations.
func (db *DB) NumLocs() int { return len(db.fps) }

// NumAPs returns the fingerprint dimensionality.
func (db *DB) NumAPs() int { return db.numAPs }

// Metric returns the dissimilarity metric in use.
func (db *DB) Metric() Metric { return db.metric }

// At returns the radio-map fingerprint of a location (1-based ID). The
// returned slice must not be modified.
func (db *DB) At(loc int) Fingerprint { return db.fps[loc-1] }

// Nearest implements Eq. 2: the location whose radio-map fingerprint is
// least dissimilar to f.
func (db *DB) Nearest(f Fingerprint) int {
	best, bestD := 0, 0.0
	for i, rm := range db.fps {
		d := db.metric.Distance(f, rm)
		if best == 0 || d < bestD {
			best, bestD = i+1, d
		}
	}
	return best
}

// KNearest implements Eq. 3–4: the k locations with the smallest
// dissimilarities to f, each with probability proportional to the
// inverse of its dissimilarity. If any dissimilarity is zero (an exact
// radio-map match), that candidate takes probability 1 and the rest 0,
// the limit of the 1/m weighting. Candidates are sorted by descending
// probability. k is clamped to the number of locations.
func (db *DB) KNearest(f Fingerprint, k int) []Candidate {
	if k <= 0 {
		return nil
	}
	if k > len(db.fps) {
		k = len(db.fps)
	}
	all := make([]Candidate, len(db.fps))
	for i, rm := range db.fps {
		all[i] = Candidate{Loc: i + 1, Dissim: db.metric.Distance(f, rm)}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Dissim != all[b].Dissim {
			return all[a].Dissim < all[b].Dissim
		}
		return all[a].Loc < all[b].Loc // deterministic tie-break
	})
	top := all[:k]

	// Eq. 4 with the exact-match limit.
	exact := false
	for _, c := range top {
		if c.Dissim == 0 {
			exact = true
			break
		}
	}
	if exact {
		for i := range top {
			if top[i].Dissim == 0 {
				top[i].Prob = 1
				// Multiple exact matches split the mass evenly.
			}
		}
		var total float64
		for _, c := range top {
			total += c.Prob
		}
		for i := range top {
			top[i].Prob /= total
		}
		return top
	}
	var invSum float64
	for _, c := range top {
		invSum += 1 / c.Dissim
	}
	for i := range top {
		top[i].Prob = (1 / top[i].Dissim) / invSum
	}
	return top
}

// ProjectAPs returns a new DB restricted to the given AP indices,
// reusing the same metric. The AP-count sweeps build a 4- and 5-AP
// database from the 6-AP survey this way, mirroring the paper's use of
// one survey for all settings.
func (db *DB) ProjectAPs(apIdx []int) (*DB, error) {
	for _, a := range apIdx {
		if a < 0 || a >= db.numAPs {
			return nil, fmt.Errorf("fingerprint: AP index %d out of range [0,%d)", a, db.numAPs)
		}
	}
	out := &DB{metric: db.metric, numAPs: len(apIdx), fps: make([]Fingerprint, len(db.fps))}
	for i, fp := range db.fps {
		out.fps[i] = fp.Project(apIdx)
	}
	return out, nil
}

// dbJSON is the serialized form of DB.
type dbJSON struct {
	Metric string        `json:"metric"`
	NumAPs int           `json:"num_aps"`
	Fps    []Fingerprint `json:"fingerprints"`
}

// SaveJSON writes the radio map to a file. Only the metric name is
// stored; LoadJSON restores the built-in metrics by name.
func (db *DB) SaveJSON(path string) error {
	data, err := json.MarshalIndent(dbJSON{
		Metric: db.metric.Name(), NumAPs: db.numAPs, Fps: db.fps,
	}, "", " ")
	if err != nil {
		return fmt.Errorf("fingerprint: marshal: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("fingerprint: write %s: %w", path, err)
	}
	return nil
}

// LoadJSON reads a radio map written by SaveJSON.
func LoadJSON(path string) (*DB, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fingerprint: read %s: %w", path, err)
	}
	var j dbJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("fingerprint: parse %s: %w", path, err)
	}
	var metric Metric
	switch j.Metric {
	case Euclidean{}.Name():
		metric = Euclidean{}
	case Manhattan{}.Name():
		metric = Manhattan{}
	case (MatchedOnly{}).Name():
		metric = MatchedOnly{Missing: -100}
	default:
		return nil, fmt.Errorf("fingerprint: unknown metric %q", j.Metric)
	}
	for i, fp := range j.Fps {
		if len(fp) != j.NumAPs {
			return nil, fmt.Errorf("fingerprint: location %d has %d APs, header says %d", i+1, len(fp), j.NumAPs)
		}
	}
	return &DB{metric: metric, numAPs: j.NumAPs, fps: j.Fps}, nil
}
