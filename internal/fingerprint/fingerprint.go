// Package fingerprint implements the RSS-fingerprinting substrate of
// MoLoc: fingerprint vectors, the Euclidean dissimilarity of Eq. 1, the
// radio map built by site survey, nearest-neighbor localization (Eq. 2),
// and the k-nearest-candidate selection with probabilities (Eq. 3–4)
// that feeds MoLoc's candidate evaluation.
package fingerprint

import (
	"fmt"
	"math"
)

// Fingerprint is an RSS vector, one dBm value per AP in plan order.
// Undetected APs hold rf.NotDetected (-100 dBm).
type Fingerprint []float64

// Clone returns a copy of f.
func (f Fingerprint) Clone() Fingerprint {
	c := make(Fingerprint, len(f))
	copy(c, f)
	return c
}

// Project returns the sub-fingerprint restricted to the given AP
// indices, in the given order. MoLoc's AP-count sweeps (4/5/6 APs in
// Figs. 7–8) evaluate on projected fingerprints.
func (f Fingerprint) Project(apIdx []int) Fingerprint {
	out := make(Fingerprint, len(apIdx))
	for i, a := range apIdx {
		out[i] = f[a]
	}
	return out
}

// Metric measures dissimilarity between two equal-length fingerprints.
// Lower is more similar.
type Metric interface {
	Distance(a, b Fingerprint) float64
	Name() string
}

// mustSameLen panics when two fingerprints disagree on length, which
// indicates mixing fingerprints from different AP sets — a programming
// error.
func mustSameLen(a, b Fingerprint) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("fingerprint: length mismatch %d vs %d", len(a), len(b)))
	}
}

// Euclidean is the paper's dissimilarity (Eq. 1):
// phi^2(F, F') = sum_i (f_i - f'_i)^2.
type Euclidean struct{}

var _ Metric = Euclidean{}

// Distance returns the Euclidean distance between a and b. It panics on
// length mismatch, which indicates mixing fingerprints from different AP
// sets — a programming error.
func (Euclidean) Distance(a, b Fingerprint) float64 {
	mustSameLen(a, b)
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Name implements Metric.
func (Euclidean) Name() string { return "euclidean" }

// Manhattan is an alternative L1 dissimilarity, provided for ablation.
type Manhattan struct{}

var _ Metric = Manhattan{}

// Distance returns the L1 distance between a and b.
func (Manhattan) Distance(a, b Fingerprint) float64 {
	mustSameLen(a, b)
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// Name implements Metric.
func (Manhattan) Name() string { return "manhattan" }

// MatchedOnly is a Euclidean variant that only scores APs detected in
// both fingerprints, normalizing by the matched count. It is more robust
// when AP dropout is heavy; provided for ablation.
type MatchedOnly struct {
	// Missing is the sentinel value marking an undetected AP
	// (rf.NotDetected).
	Missing float64
}

var _ Metric = MatchedOnly{}

// Distance returns the RMS difference over APs heard in both vectors.
// If no AP is shared, it returns a large constant so the pair ranks
// last.
func (m MatchedOnly) Distance(a, b Fingerprint) float64 {
	mustSameLen(a, b)
	var s float64
	n := 0
	for i := range a {
		if a[i] == m.Missing || b[i] == m.Missing {
			continue
		}
		d := a[i] - b[i]
		s += d * d
		n++
	}
	if n == 0 {
		return 1e6
	}
	return math.Sqrt(s / float64(n) * float64(len(a)))
}

// Name implements Metric.
func (m MatchedOnly) Name() string { return "matched-only" }
