package fingerprint

import (
	"fmt"

	"moloc/internal/rf"
	"moloc/internal/stats"
)

// SurveyResult holds the raw site-survey scans, partitioned the way the
// paper's trace-driven methodology partitions them (Sec. VI-A): of the
// 60 samples per location, 40 build the radio map, 10 serve as location
// estimates during motion-DB training, and 10 are held out for
// localization tests.
type SurveyResult struct {
	// Train[i] are the radio-map scans for location i+1.
	Train [][]Fingerprint
	// MotionEst[i] are the scans used when estimating locations during
	// motion-database construction.
	MotionEst [][]Fingerprint
	// Test[i] are the held-out scans used by the localization
	// experiments.
	Test [][]Fingerprint
}

// SurveyConfig controls the simulated site survey.
type SurveyConfig struct {
	// SamplesPerLoc is the total number of scans per location (60 in the
	// paper).
	SamplesPerLoc int
	// TrainFrac and MotionFrac split the samples; the remainder is the
	// test set. The paper uses 40/10/10.
	TrainFrac  float64
	MotionFrac float64
}

// NewSurveyConfig returns the paper's split: 60 samples per location,
// 40 train / 10 motion / 10 test.
func NewSurveyConfig() SurveyConfig {
	return SurveyConfig{SamplesPerLoc: 60, TrainFrac: 40.0 / 60, MotionFrac: 10.0 / 60}
}

// Survey simulates the site survey: it collects cfg.SamplesPerLoc scans
// at every reference location of the model's plan and splits them into
// train / motion-estimation / test sets. Scans are drawn in a random
// order per location (the paper collects them facing four different
// directions; temporal noise plays that role here).
func Survey(model *rf.Model, cfg SurveyConfig, rng *stats.RNG) (*SurveyResult, error) {
	if cfg.SamplesPerLoc < 3 {
		return nil, fmt.Errorf("fingerprint: need at least 3 samples per location, got %d", cfg.SamplesPerLoc)
	}
	if cfg.TrainFrac <= 0 || cfg.MotionFrac < 0 || cfg.TrainFrac+cfg.MotionFrac >= 1 {
		return nil, fmt.Errorf("fingerprint: invalid survey split %g/%g", cfg.TrainFrac, cfg.MotionFrac)
	}
	plan := model.Plan()
	n := plan.NumLocs()
	res := &SurveyResult{
		Train:     make([][]Fingerprint, n),
		MotionEst: make([][]Fingerprint, n),
		Test:      make([][]Fingerprint, n),
	}
	nTrain := int(float64(cfg.SamplesPerLoc)*cfg.TrainFrac + 0.5)
	nMotion := int(float64(cfg.SamplesPerLoc)*cfg.MotionFrac + 0.5)
	if nTrain < 1 {
		nTrain = 1
	}
	if nTrain+nMotion >= cfg.SamplesPerLoc {
		return nil, fmt.Errorf("fingerprint: split leaves no test samples")
	}
	for i := 1; i <= n; i++ {
		pos := plan.LocPos(i)
		scans := make([]Fingerprint, cfg.SamplesPerLoc)
		for s := range scans {
			scans[s] = Fingerprint(model.Sample(pos, rng))
		}
		rng.Shuffle(len(scans), func(a, b int) { scans[a], scans[b] = scans[b], scans[a] })
		res.Train[i-1] = scans[:nTrain]
		res.MotionEst[i-1] = scans[nTrain : nTrain+nMotion]
		res.Test[i-1] = scans[nTrain+nMotion:]
	}
	return res, nil
}

// BuildDB builds the radio map from the survey's training scans.
func (r *SurveyResult) BuildDB(metric Metric, numAPs int) (*DB, error) {
	return NewDB(metric, numAPs, r.Train)
}

// ProjectAPs returns a copy of the survey restricted to the given AP
// indices, for the 4/5-AP experiments.
func (r *SurveyResult) ProjectAPs(apIdx []int) *SurveyResult {
	project := func(in [][]Fingerprint) [][]Fingerprint {
		out := make([][]Fingerprint, len(in))
		for i, scans := range in {
			out[i] = make([]Fingerprint, len(scans))
			for s, fp := range scans {
				out[i][s] = fp.Project(apIdx)
			}
		}
		return out
	}
	return &SurveyResult{
		Train:     project(r.Train),
		MotionEst: project(r.MotionEst),
		Test:      project(r.Test),
	}
}
