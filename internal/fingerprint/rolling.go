package fingerprint

import (
	"fmt"
)

// RollingMap maintains a bounded ring buffer of recent scans per
// location and rebuilds radio maps from them. It is the self-healing
// counterpart to radio-map aging: a localizer that trusts a fix can
// feed the fix's scan back, so the map tracks slow RF drift (AP power
// changes, furniture moves) without a re-survey. Mislabeled feedback is
// diluted by the buffer and ages out as correct scans arrive.
type RollingMap struct {
	numAPs   int
	capacity int
	buf      [][]Fingerprint // ring buffer per location
	pos      []int
}

// NewRollingMap creates a rolling map for numLocs locations, seeding
// every location's buffer with its fingerprint from the given surveyed
// radio map so snapshots are usable from the start.
func NewRollingMap(seed *DB, capacity int) (*RollingMap, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("fingerprint: rolling capacity must be >= 1, got %d", capacity)
	}
	r := &RollingMap{
		numAPs:   seed.NumAPs(),
		capacity: capacity,
		buf:      make([][]Fingerprint, seed.NumLocs()),
		pos:      make([]int, seed.NumLocs()),
	}
	for loc := 1; loc <= seed.NumLocs(); loc++ {
		r.buf[loc-1] = append(r.buf[loc-1], seed.At(loc).Clone())
	}
	return r, nil
}

// Add feeds one believed (location, scan) pair. Scans with the wrong
// width are rejected.
func (r *RollingMap) Add(loc int, fp Fingerprint) error {
	if loc < 1 || loc > len(r.buf) {
		return fmt.Errorf("fingerprint: location %d out of range", loc)
	}
	if len(fp) != r.numAPs {
		return fmt.Errorf("fingerprint: scan has %d APs, map has %d", len(fp), r.numAPs)
	}
	i := loc - 1
	if len(r.buf[i]) < r.capacity {
		r.buf[i] = append(r.buf[i], fp.Clone())
		return nil
	}
	r.buf[i][r.pos[i]] = fp.Clone()
	r.pos[i] = (r.pos[i] + 1) % r.capacity
	return nil
}

// Len reports how many scans the location's buffer currently holds.
func (r *RollingMap) Len(loc int) int { return len(r.buf[loc-1]) }

// Snapshot builds a radio map from the current buffers.
func (r *RollingMap) Snapshot(metric Metric) (*DB, error) {
	return NewDB(metric, r.numAPs, r.buf)
}
