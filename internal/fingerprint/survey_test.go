package fingerprint

import (
	"testing"

	"moloc/internal/floorplan"
	"moloc/internal/rf"
	"moloc/internal/stats"
)

func officeModel(t *testing.T) *rf.Model {
	t.Helper()
	m, err := rf.NewModel(floorplan.OfficeHall(), rf.NewParams(), 1)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	return m
}

func TestSurveySplit(t *testing.T) {
	m := officeModel(t)
	res, err := Survey(m, NewSurveyConfig(), stats.NewRNG(1))
	if err != nil {
		t.Fatalf("Survey: %v", err)
	}
	if len(res.Train) != 28 || len(res.MotionEst) != 28 || len(res.Test) != 28 {
		t.Fatal("wrong number of locations")
	}
	for i := range res.Train {
		if len(res.Train[i]) != 40 {
			t.Errorf("loc %d train = %d, want 40", i+1, len(res.Train[i]))
		}
		if len(res.MotionEst[i]) != 10 {
			t.Errorf("loc %d motion = %d, want 10", i+1, len(res.MotionEst[i]))
		}
		if len(res.Test[i]) != 10 {
			t.Errorf("loc %d test = %d, want 10", i+1, len(res.Test[i]))
		}
	}
}

func TestSurveyErrors(t *testing.T) {
	m := officeModel(t)
	bad := []SurveyConfig{
		{SamplesPerLoc: 2, TrainFrac: 0.5, MotionFrac: 0.2},
		{SamplesPerLoc: 60, TrainFrac: 0, MotionFrac: 0.2},
		{SamplesPerLoc: 60, TrainFrac: 0.8, MotionFrac: 0.3},
		{SamplesPerLoc: 3, TrainFrac: 0.65, MotionFrac: 0.32},
	}
	for i, cfg := range bad {
		if _, err := Survey(m, cfg, stats.NewRNG(1)); err == nil {
			t.Errorf("config %d should error", i)
		}
	}
}

func TestSurveyDeterminism(t *testing.T) {
	m := officeModel(t)
	r1, _ := Survey(m, NewSurveyConfig(), stats.NewRNG(9))
	m2 := officeModel(t)
	r2, _ := Survey(m2, NewSurveyConfig(), stats.NewRNG(9))
	if r1.Train[0][0][0] != r2.Train[0][0][0] {
		t.Error("survey must be deterministic under a fixed seed")
	}
}

func TestSurveyBuildDB(t *testing.T) {
	m := officeModel(t)
	res, err := Survey(m, NewSurveyConfig(), stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	db, err := res.BuildDB(Euclidean{}, m.NumAPs())
	if err != nil {
		t.Fatalf("BuildDB: %v", err)
	}
	if db.NumLocs() != 28 || db.NumAPs() != 6 {
		t.Errorf("db dims = %d locs x %d APs", db.NumLocs(), db.NumAPs())
	}
	// Radio map should localize its own training locations well: the
	// mean test fingerprint of a location should usually match it.
	correct := 0
	for loc := 1; loc <= 28; loc++ {
		if db.Nearest(db.At(loc)) == loc {
			correct++
		}
	}
	if correct != 28 {
		t.Errorf("radio map self-lookup correct for %d/28", correct)
	}
}

func TestSurveyProjectAPs(t *testing.T) {
	m := officeModel(t)
	res, err := Survey(m, NewSurveyConfig(), stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	p := res.ProjectAPs([]int{0, 2, 4})
	if len(p.Train[0][0]) != 3 {
		t.Errorf("projected width = %d, want 3", len(p.Train[0][0]))
	}
	if p.Train[3][2][1] != res.Train[3][2][2] {
		t.Error("projection should pick AP index 2 into slot 1")
	}
}
