// Fast-path equivalence: the compiled localization engine (PR 3) must
// produce the same fixes as the uncompiled reference transcription of
// Eq. 3–7 on recorded traces, and must not allocate at steady state.
package moloc_test

import (
	"testing"

	"moloc/internal/core"
	"moloc/internal/fingerprint"
	"moloc/internal/localizer"
)

func buildSmallDeployment(t *testing.T) (*core.System, *core.Deployment) {
	t.Helper()
	cfg := core.NewConfig()
	cfg.NumTrainTraces = 30
	cfg.NumTestTraces = 8
	sys, err := core.Build(cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	dep, err := sys.Deploy(sys.AllAPs())
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	return sys, dep
}

// replayTraces runs every test trace through both localizers and
// compares the fix sequences observation for observation.
func replayTraces(t *testing.T, dep *core.Deployment, fast, ref localizer.Localizer) {
	t.Helper()
	for ti, td := range dep.TestData {
		fast.Reset()
		ref.Reset()
		obs := localizer.Observation{FP: td.StartFP}
		if f, r := fast.Localize(obs), ref.Localize(obs); f != r {
			t.Fatalf("trace %d start: fast fix %d, reference fix %d", ti, f, r)
		}
		for li, ld := range td.Legs {
			obs := localizer.Observation{FP: ld.FP, Motion: ld.RLM}
			if f, r := fast.Localize(obs), ref.Localize(obs); f != r {
				t.Fatalf("trace %d leg %d: fast fix %d, reference fix %d", ti, li, f, r)
			}
		}
	}
}

// TestMoLocCompiledMatchesReference replays the recorded test traces
// through the compiled engine and the reference, over both fingerprint
// sources, expecting identical fixes throughout.
func TestMoLocCompiledMatchesReference(t *testing.T) {
	sys, dep := buildSmallDeployment(t)
	for _, src := range []struct {
		name string
		s    fingerprint.CandidateSource
	}{{"deterministic", dep.FDB}, {"gaussian", dep.GDB}} {
		fast, err := localizer.NewMoLoc(src.s, sys.MDB, sys.Config.MoLoc)
		if err != nil {
			t.Fatalf("%s: NewMoLoc: %v", src.name, err)
		}
		ref, err := localizer.NewMoLocReference(src.s, sys.MDB, sys.Config.MoLoc)
		if err != nil {
			t.Fatalf("%s: NewMoLocReference: %v", src.name, err)
		}
		replayTraces(t, dep, fast, ref)
	}
}

// TestDeadReckoningCompiledMatchesReference is the same fix-for-fix
// replay for the motion-only ablation, whose fast path additionally
// reconstructs the full-grid posterior cut from the touched set.
func TestDeadReckoningCompiledMatchesReference(t *testing.T) {
	sys, dep := buildSmallDeployment(t)
	fast, err := localizer.NewDeadReckoning(dep.FDB, sys.MDB, sys.Config.MoLoc)
	if err != nil {
		t.Fatalf("NewDeadReckoning: %v", err)
	}
	ref, err := localizer.NewDeadReckoningReference(dep.FDB, sys.MDB, sys.Config.MoLoc)
	if err != nil {
		t.Fatalf("NewDeadReckoningReference: %v", err)
	}
	replayTraces(t, dep, fast, ref)
}

// TestLocalizeZeroAllocs pins the steady-state Localize of both
// compiled localizers at zero heap allocations.
func TestLocalizeZeroAllocs(t *testing.T) {
	sys, dep := buildSmallDeployment(t)
	td := dep.TestData[0]
	if len(td.Legs) == 0 {
		t.Fatal("test trace has no legs")
	}
	obs := localizer.Observation{FP: td.Legs[0].FP, Motion: td.Legs[0].RLM}

	ml, err := localizer.NewMoLoc(dep.FDB, sys.MDB, sys.Config.MoLoc)
	if err != nil {
		t.Fatalf("NewMoLoc: %v", err)
	}
	ml.Localize(localizer.Observation{FP: td.StartFP})
	ml.Localize(obs) // warm the scratch buffers
	if avg := testing.AllocsPerRun(100, func() { ml.Localize(obs) }); avg != 0 {
		t.Errorf("MoLoc.Localize allocates %.1f per run, want 0", avg)
	}

	dr, err := localizer.NewDeadReckoning(dep.FDB, sys.MDB, sys.Config.MoLoc)
	if err != nil {
		t.Fatalf("NewDeadReckoning: %v", err)
	}
	dr.Localize(localizer.Observation{FP: td.StartFP})
	dr.Localize(obs)
	if avg := testing.AllocsPerRun(100, func() { dr.Localize(obs) }); avg != 0 {
		t.Errorf("DeadReckoning.Localize allocates %.1f per run, want 0", avg)
	}
}
