// Fast-path equivalence: the compiled localization engine (PR 3) must
// produce the same fixes as the uncompiled reference transcription of
// Eq. 3–7 on recorded traces, and must not allocate at steady state.
package moloc_test

import (
	"testing"

	"moloc/internal/core"
	"moloc/internal/fingerprint"
	"moloc/internal/localizer"
	"moloc/internal/motiondb"
)

func buildSmallDeployment(t *testing.T) (*core.System, *core.Deployment) {
	t.Helper()
	cfg := core.NewConfig()
	cfg.NumTrainTraces = 30
	cfg.NumTestTraces = 8
	sys, err := core.Build(cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	dep, err := sys.Deploy(sys.AllAPs())
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	return sys, dep
}

// replayTraces runs every test trace through both localizers and
// compares the fix sequences observation for observation.
func replayTraces(t *testing.T, dep *core.Deployment, fast, ref localizer.Localizer) {
	t.Helper()
	for ti, td := range dep.TestData {
		fast.Reset()
		ref.Reset()
		obs := localizer.Observation{FP: td.StartFP}
		if f, r := fast.Localize(obs), ref.Localize(obs); f != r {
			t.Fatalf("trace %d start: fast fix %d, reference fix %d", ti, f, r)
		}
		for li, ld := range td.Legs {
			obs := localizer.Observation{FP: ld.FP, Motion: ld.RLM}
			if f, r := fast.Localize(obs), ref.Localize(obs); f != r {
				t.Fatalf("trace %d leg %d: fast fix %d, reference fix %d", ti, li, f, r)
			}
		}
	}
}

// TestMoLocCompiledMatchesReference replays the recorded test traces
// through the compiled engine and the reference, over both fingerprint
// sources, expecting identical fixes throughout.
func TestMoLocCompiledMatchesReference(t *testing.T) {
	sys, dep := buildSmallDeployment(t)
	for _, src := range []struct {
		name string
		s    fingerprint.CandidateSource
	}{{"deterministic", dep.FDB}, {"gaussian", dep.GDB}} {
		fast, err := localizer.NewMoLoc(src.s, sys.MDB, sys.Config.MoLoc)
		if err != nil {
			t.Fatalf("%s: NewMoLoc: %v", src.name, err)
		}
		ref, err := localizer.NewMoLocReference(src.s, sys.MDB, sys.Config.MoLoc)
		if err != nil {
			t.Fatalf("%s: NewMoLocReference: %v", src.name, err)
		}
		replayTraces(t, dep, fast, ref)
	}
}

// TestDeadReckoningCompiledMatchesReference is the same fix-for-fix
// replay for the motion-only ablation, whose fast path additionally
// reconstructs the full-grid posterior cut from the touched set.
func TestDeadReckoningCompiledMatchesReference(t *testing.T) {
	sys, dep := buildSmallDeployment(t)
	fast, err := localizer.NewDeadReckoning(dep.FDB, sys.MDB, sys.Config.MoLoc)
	if err != nil {
		t.Fatalf("NewDeadReckoning: %v", err)
	}
	ref, err := localizer.NewDeadReckoningReference(dep.FDB, sys.MDB, sys.Config.MoLoc)
	if err != nil {
		t.Fatalf("NewDeadReckoningReference: %v", err)
	}
	replayTraces(t, dep, fast, ref)
}

// TestLocalizeZeroAllocs pins the steady-state Localize of both
// compiled localizers at zero heap allocations.
func TestLocalizeZeroAllocs(t *testing.T) {
	sys, dep := buildSmallDeployment(t)
	td := dep.TestData[0]
	if len(td.Legs) == 0 {
		t.Fatal("test trace has no legs")
	}
	obs := localizer.Observation{FP: td.Legs[0].FP, Motion: td.Legs[0].RLM}

	ml, err := localizer.NewMoLoc(dep.FDB, sys.MDB, sys.Config.MoLoc)
	if err != nil {
		t.Fatalf("NewMoLoc: %v", err)
	}
	ml.Localize(localizer.Observation{FP: td.StartFP})
	ml.Localize(obs) // warm the scratch buffers
	if avg := testing.AllocsPerRun(100, func() { ml.Localize(obs) }); avg != 0 {
		t.Errorf("MoLoc.Localize allocates %.1f per run, want 0", avg)
	}

	dr, err := localizer.NewDeadReckoning(dep.FDB, sys.MDB, sys.Config.MoLoc)
	if err != nil {
		t.Fatalf("NewDeadReckoning: %v", err)
	}
	dr.Localize(localizer.Observation{FP: td.StartFP})
	dr.Localize(obs)
	if avg := testing.AllocsPerRun(100, func() { dr.Localize(obs) }); avg != 0 {
		t.Errorf("DeadReckoning.Localize allocates %.1f per run, want 0", avg)
	}
}

// TestLocalizeZeroAllocsAcrossSnapshotSwaps pins the serving contract
// of the online-training path: adopting a freshly recompiled motion
// index (UseCompiled, as the tracker does once per tick when the server
// republishes its RCU snapshot) between fixes keeps Localize at zero
// heap allocations.
func TestLocalizeZeroAllocsAcrossSnapshotSwaps(t *testing.T) {
	sys, dep := buildSmallDeployment(t)
	td := dep.TestData[0]
	obs := localizer.Observation{FP: td.Legs[0].FP, Motion: td.Legs[0].RLM}

	ml, err := localizer.NewMoLoc(dep.FDB, sys.MDB, sys.Config.MoLoc)
	if err != nil {
		t.Fatalf("NewMoLoc: %v", err)
	}
	ml.Localize(localizer.Observation{FP: td.StartFP})
	ml.Localize(obs)

	// Two published views: the offline compile and an incremental
	// recompile of one mutated edge over a cloned database.
	c0, err := sys.MDB.Compile(sys.Config.MoLoc.Alpha, sys.Config.MoLoc.Beta)
	if err != nil {
		t.Fatal(err)
	}
	db2 := sys.MDB.Clone()
	pair := db2.Pairs()[0]
	e, _ := db2.Lookup(pair[0], pair[1])
	e.N += 25
	db2.Set(pair[0], pair[1], e)
	c1, err := c0.RecompileEdges(db2, [][2]int{pair})
	if err != nil {
		t.Fatal(err)
	}

	views := [2]*motiondb.Compiled{c0, c1}
	i := 0
	avg := testing.AllocsPerRun(100, func() {
		i++
		if err := ml.UseCompiled(views[i%2]); err != nil {
			t.Fatalf("UseCompiled: %v", err)
		}
		ml.Localize(obs)
	})
	if avg != 0 {
		t.Errorf("Localize with per-run snapshot swaps allocates %.1f per run, want 0", avg)
	}
}
