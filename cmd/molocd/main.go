// Command molocd serves MoLoc localization over HTTP: it builds a
// deployment (plan, radio map, crowdsourced motion database) and exposes
// the tracking-session API of internal/server.
//
// Usage:
//
//	molocd [-addr :8080] [-plan office|mall|museum] [-seed N] [-aps N] [-horus]
//
// Try it:
//
//	curl -s -X POST localhost:8080/v1/sessions -d '{"height_m":1.71,"weight_kg":68}'
//	curl -s localhost:8080/v1/healthz
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"moloc/internal/core"
	"moloc/internal/fingerprint"
	"moloc/internal/floorplan"
	"moloc/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "molocd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		planName = flag.String("plan", "office", "floor plan: office, mall, or museum")
		seed     = flag.Int64("seed", 3, "world seed")
		aps      = flag.Int("aps", 0, "number of APs to use (0 = all)")
		horus    = flag.Bool("horus", false, "use the probabilistic (Horus-style) radio map")
		bundle   = flag.String("bundle", "", "serve a pre-built deployment bundle (see molocsim -export) instead of building")
	)
	flag.Parse()

	if *bundle != "" {
		b, err := core.LoadBundle(*bundle)
		if err != nil {
			return err
		}
		srv, err := server.New(b.Plan, b.FDB, b.FDB.NumAPs(), b.MDB, b.Motion)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "molocd serving bundle %s on %s (%d locations, %d APs)\n",
			*bundle, *addr, b.Plan.NumLocs(), b.FDB.NumAPs())
		return http.ListenAndServe(*addr, srv.Handler())
	}

	cfg := core.NewConfig()
	cfg.Seed = *seed
	switch *planName {
	case "office":
	case "mall":
		cfg.Plan = floorplan.Mall()
		cfg.AdjDist = floorplan.MallAdjDist
	case "museum":
		cfg.Plan = floorplan.Museum()
		cfg.AdjDist = floorplan.MuseumAdjDist
	default:
		return fmt.Errorf("unknown plan %q", *planName)
	}

	fmt.Fprintf(os.Stderr, "building deployment (plan=%s seed=%d)...\n", *planName, *seed)
	sys, err := core.Build(cfg)
	if err != nil {
		return err
	}
	apIdx := sys.AllAPs()
	if *aps > 0 && *aps < len(apIdx) {
		apIdx = apIdx[:*aps]
	}
	dep, err := sys.Deploy(apIdx)
	if err != nil {
		return err
	}
	var src fingerprint.CandidateSource = dep.FDB
	if *horus {
		src = dep.GDB
	}
	srv, err := server.New(sys.Plan, src, len(apIdx), sys.MDB, cfg.Motion)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "molocd listening on %s (%d locations, %d APs, horus=%v)\n",
		*addr, sys.Plan.NumLocs(), len(apIdx), *horus)
	return http.ListenAndServe(*addr, srv.Handler())
}
