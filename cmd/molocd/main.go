// Command molocd serves MoLoc localization over HTTP: it builds a
// deployment (plan, radio map, crowdsourced motion database) and exposes
// the tracking-session API of internal/server, with the session-TTL
// sweeper running and graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	molocd [-addr :8080] [-stream-addr :8081] [-plan office|mall|museum] [-seed N]
//	       [-aps N] [-horus] [-train N] [-session-ttl 15m] [-max-sessions N]
//	       [-workers N] [-shards N] [-paced] [-gate] [-drain 10s] [-retrain 30s]
//	       [-data-dir DIR] [-fsync always|interval|none] [-fsync-every 100ms]
//	       [-follow leader:port] [-repl-lag-max 10s] [-pprof addr]
//
// The motion database retrains online: POST /v1/observations feeds the
// background retrainer, which republishes the compiled motion index
// every -retrain period. -pprof serves net/http/pprof on a separate
// debug listener (never the public one), so ingest/recompile CPU
// profiles can be captured in production.
//
// With -data-dir set, ingestion and training are crash-safe: every
// acknowledged observation batch is in a write-ahead log before its 202,
// each retrain checkpoints the motion database atomically, and a
// restart recovers checkpoint + WAL tail with nothing acknowledged
// lost. -fsync picks the WAL durability policy (always = fsync per
// batch; interval = group commit every -fsync-every; none = leave it to
// the OS). /v1/healthz reports the degradation ladder: "ok",
// "degraded-fingerprint-only" (durability impaired, fixes keep flowing
// on the fingerprint-only path), or "recovering".
//
// -stream-addr opens a second listener speaking the binary streaming
// protocol (internal/wire): phones hold one persistent connection,
// pipeline length-prefixed observation/IMU/scan/tick frames under a
// credit window, and get each observation batch acknowledged only after
// its WAL record's covering fsync — with one group-committed fsync
// amortized over every stream that raced in. molocsim -stream and
// molocctl stream speak it.
//
// -follow runs this molocd as a read replica: it dials the named
// leader's -stream-addr listener, bootstraps from the leader's newest
// checkpoint, and replays the leader's WAL into its own -data-dir —
// serving sessions and fixes off the replicated motion database while
// answering POST /v1/observations with 409 (the leader owns writes).
// /v1/healthz gains "role" and replication lag fields; a follower more
// than -repl-lag-max behind serves fingerprint-only fixes until it
// catches up. POST /v1/admin/promote (molocctl promote) turns the
// replica into a leader that accepts ingest, with nothing the old
// leader acknowledged lost.
//
// -paced flips every session to server pacing: instead of clients
// POSTing /tick, the server's timer wheel ticks each session at its
// tracker interval, batching the sessions due in a slot per worker
// (one motion-index snapshot load per batch). Paced fixes are pushed
// over the stream listener as unsolicited Fix frames; HTTP-only clients
// poll GET /v1/sessions/{id}. Individual sessions opt in with
// {"paced":true} at create regardless of the flag. -shards sets the
// session-registry stripe count (default: one per worker).
//
// Try it:
//
//	curl -s -X POST localhost:8080/v1/sessions -d '{"height_m":1.71,"weight_kg":68}'
//	curl -s -X POST localhost:8080/v1/observations -d '{"observations":[{"from":1,"to":2,"rlm":{"dir":90,"off":5}}]}'
//	curl -s localhost:8080/v1/healthz
//	curl -s localhost:8080/v1/metricsz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"moloc/internal/core"
	"moloc/internal/fingerprint"
	"moloc/internal/floorplan"
	"moloc/internal/server"
	"moloc/internal/wal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "molocd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		streamAddr  = flag.String("stream-addr", "", "binary streaming-ingest listener address (empty = off)")
		planName    = flag.String("plan", "office", "floor plan: office, mall, or museum")
		seed        = flag.Int64("seed", 3, "world seed")
		aps         = flag.Int("aps", 0, "number of APs to use (0 = all)")
		horus       = flag.Bool("horus", false, "use the probabilistic (Horus-style) radio map")
		bundle      = flag.String("bundle", "", "serve a pre-built deployment bundle (see molocsim -export) instead of building")
		train       = flag.Int("train", 0, "crowdsourced training traces to build with (0 = default)")
		sessionTTL  = flag.Duration("session-ttl", server.DefaultSessionTTL, "idle session eviction deadline")
		maxSessions = flag.Int("max-sessions", server.DefaultMaxSessions, "live session cap (429 beyond)")
		workers     = flag.Int("workers", 0, "data-plane worker pool size (0 = GOMAXPROCS)")
		shards      = flag.Int("shards", 0, "session-registry lock stripes (0 = workers)")
		paced       = flag.Bool("paced", false, "server-pace every session: tick on the server's wheel instead of client tick requests")
		wheelSlot   = flag.Duration("wheel-slot", server.DefaultWheelSlotDur, "tick-wheel slot width; finer slots cut per-fire batch size (and fix-latency tails) at more wheel wakeups")
		gate        = flag.Bool("gate", false, "reachability-gate steady-state candidate scans (per-fix cost bounded by motion-DB adjacency, not map size)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
		retrain     = flag.Duration("retrain", server.DefaultRetrainInterval, "online-retrain period for queued observations")
		dataDir     = flag.String("data-dir", "", "durability directory: observation WAL + motion-DB checkpoints (empty = in-memory only)")
		fsync       = flag.String("fsync", "always", "WAL durability policy: always, interval, or none")
		fsyncEvery  = flag.Duration("fsync-every", wal.DefaultSyncEvery, "group-commit window under -fsync interval")
		follow      = flag.String("follow", "", "run as a read replica following the leader's stream listener at this host:port (requires -data-dir)")
		replLagMax  = flag.Duration("repl-lag-max", server.DefaultReplLagMax, "replication lag beyond which a follower serves fingerprint-only fixes")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this separate debug address (empty = off)")
	)
	flag.Parse()

	policy, err := wal.ParseSyncPolicy(*fsync)
	if err != nil {
		return err
	}
	opts := server.Options{
		SessionTTL:      *sessionTTL,
		MaxSessions:     *maxSessions,
		Workers:         *workers,
		Shards:          *shards,
		PaceAll:         *paced,
		WheelSlotDur:    *wheelSlot,
		Gate:            *gate,
		RetrainInterval: *retrain,
		DataDir:         *dataDir,
		FsyncPolicy:     policy,
		FsyncInterval:   *fsyncEvery,
		FollowAddr:      *follow,
		ReplLagMax:      *replLagMax,
	}
	if *follow != "" && *dataDir == "" {
		return errors.New("-follow requires -data-dir: a replica keeps a durable copy of the leader's history")
	}

	var srv *server.Server
	if *bundle != "" {
		b, err := core.LoadBundle(*bundle)
		if err != nil {
			return err
		}
		srv, err = server.NewWithOptions(b.Plan, b.FDB, b.FDB.NumAPs(), b.MDB, b.Motion, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "molocd serving bundle %s on %s (%d locations, %d APs)\n",
			*bundle, *addr, b.Plan.NumLocs(), b.FDB.NumAPs())
	} else {
		cfg := core.NewConfig()
		cfg.Seed = *seed
		if *train > 0 {
			cfg.NumTrainTraces = *train
		}
		switch *planName {
		case "office":
		case "mall":
			cfg.Plan = floorplan.Mall()
			cfg.AdjDist = floorplan.MallAdjDist
		case "museum":
			cfg.Plan = floorplan.Museum()
			cfg.AdjDist = floorplan.MuseumAdjDist
		default:
			return fmt.Errorf("unknown plan %q", *planName)
		}

		fmt.Fprintf(os.Stderr, "building deployment (plan=%s seed=%d)...\n", *planName, *seed)
		sys, err := core.Build(cfg)
		if err != nil {
			return err
		}
		apIdx := sys.AllAPs()
		if *aps > 0 && *aps < len(apIdx) {
			apIdx = apIdx[:*aps]
		}
		dep, err := sys.Deploy(apIdx)
		if err != nil {
			return err
		}
		var src fingerprint.CandidateSource = dep.FDB
		if *horus {
			src = dep.GDB
		}
		// The walk graph gates online ingest: observations between
		// non-adjacent locations are dropped at the door. Bundles carry
		// no graph, so bundle serving trains unfiltered.
		opts.TrainGraph = sys.Graph
		srv, err = server.NewWithOptions(sys.Plan, src, len(apIdx), sys.MDB, cfg.Motion, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "molocd listening on %s (%d locations, %d APs, horus=%v)\n",
			*addr, sys.Plan.NumLocs(), len(apIdx), *horus)
	}

	if *dataDir != "" {
		fmt.Fprintf(os.Stderr, "molocd: durability on (data-dir=%s fsync=%s); serving state %q\n",
			*dataDir, *fsync, srv.ServingState())
	}
	if *follow != "" {
		fmt.Fprintf(os.Stderr, "molocd: read replica following %s (lag window %s); POST /v1/admin/promote to take over\n",
			*follow, *replLagMax)
	}
	if *pprofAddr != "" {
		//lint:ignore waitleak the debug listener lives for the process; nothing joins it
		go servePprof(*pprofAddr)
	}
	return serve(srv, *addr, *streamAddr, *drain)
}

// servePprof serves the net/http/pprof handlers on their own mux and
// listener. The debug surface never shares the public listener: the
// handlers are registered explicitly on a fresh mux (not the implicit
// http.DefaultServeMux registration), so profiling cannot leak onto the
// API address by accident.
func servePprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	fmt.Fprintf(os.Stderr, "molocd: pprof debug listener on %s\n", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		fmt.Fprintln(os.Stderr, "molocd: pprof listener:", err)
	}
}

// serve runs the HTTP server with the session sweeper attached and
// drains gracefully on SIGINT/SIGTERM: stop accepting new connections,
// let in-flight requests finish (bounded by the drain timeout), then
// stop the sweeper.
func serve(srv *server.Server, addr, streamAddr string, drain time.Duration) error {
	srv.Start()
	defer srv.Close()

	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	// The streaming plane gets its own listener; srv.Close (deferred
	// above) stops the accept loop and severs live stream connections.
	streamErrc := make(chan error, 1)
	if streamAddr != "" {
		ln, err := net.Listen("tcp", streamAddr)
		if err != nil {
			return fmt.Errorf("stream listener: %w", err)
		}
		fmt.Fprintf(os.Stderr, "molocd: binary stream listener on %s\n", streamAddr)
		go func() { streamErrc <- srv.ServeStreams(ln) }()
	}

	select {
	case err := <-errc:
		return err // bind failure or unexpected listener exit
	case err := <-streamErrc:
		return fmt.Errorf("stream listener: %w", err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "molocd: signal received, draining...")
	shutCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "molocd: drained, exiting")
	return nil
}
