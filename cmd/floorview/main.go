// Command floorview renders a built-in floor plan as ASCII art and
// prints its walk-graph statistics: reference locations, aisles, and
// which geographically close pairs are not mutually walkable (the
// consistency cases the motion database must respect).
//
// Usage:
//
//	floorview [-plan office|mall|museum] [-cell 1.0]
package main

import (
	"flag"
	"fmt"
	"os"

	"moloc/internal/floorplan"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "floorview:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		planName = flag.String("plan", "office", "floor plan: office, mall, or museum")
		cell     = flag.Float64("cell", 1.0, "ASCII cell size in meters")
	)
	flag.Parse()

	var (
		plan *floorplan.Plan
		adj  float64
	)
	switch *planName {
	case "office":
		plan, adj = floorplan.OfficeHall(), floorplan.OfficeHallAdjDist
	case "mall":
		plan, adj = floorplan.Mall(), floorplan.MallAdjDist
	case "museum":
		plan, adj = floorplan.Museum(), floorplan.MuseumAdjDist
	default:
		return fmt.Errorf("unknown plan %q", *planName)
	}

	fmt.Print(floorplan.RenderASCII(plan, *cell))

	graph := floorplan.BuildWalkGraph(plan, adj)
	fmt.Printf("\nwalk graph: %d nodes, %d aisles, connected=%v\n",
		graph.NumNodes(), graph.NumEdges(), graph.Connected())

	// Geographically close pairs that are NOT walkable directly: the
	// consistency principle in action.
	fmt.Println("close but severed pairs (straight line blocked):")
	found := false
	for i := 1; i <= plan.NumLocs(); i++ {
		for j := i + 1; j <= plan.NumLocs(); j++ {
			if plan.LocDist(i, j) <= adj && !graph.Adjacent(i, j) {
				if _, d, ok := graph.ShortestPath(i, j); ok {
					fmt.Printf("  %d-%d: straight %.1fm, walkable %.1fm\n",
						i, j, plan.LocDist(i, j), d)
					found = true
				}
			}
		}
	}
	if !found {
		fmt.Println("  (none)")
	}
	return nil
}
