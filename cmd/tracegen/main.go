// Command tracegen generates crowdsourced walking traces over a
// built-in floor plan and writes them as JSON, for inspection or for
// feeding external tools.
//
// Usage:
//
//	tracegen [-plan office|mall|museum] [-n 10] [-legs 16] [-seed 1] [-o traces.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"moloc/internal/floorplan"
	"moloc/internal/motion"
	"moloc/internal/sensors"
	"moloc/internal/stats"
	"moloc/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		planName = flag.String("plan", "office", "floor plan: office, mall, or museum")
		n        = flag.Int("n", 10, "number of traces")
		legs     = flag.Int("legs", 16, "legs per trace")
		seed     = flag.Int64("seed", 1, "generation seed")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var (
		plan *floorplan.Plan
		adj  float64
	)
	switch *planName {
	case "office":
		plan, adj = floorplan.OfficeHall(), floorplan.OfficeHallAdjDist
	case "mall":
		plan, adj = floorplan.Mall(), floorplan.MallAdjDist
	case "museum":
		plan, adj = floorplan.Museum(), floorplan.MuseumAdjDist
	default:
		return fmt.Errorf("unknown plan %q", *planName)
	}
	graph := floorplan.BuildWalkGraph(plan, adj)

	sg, err := sensors.NewGenerator(sensors.NewParams())
	if err != nil {
		return err
	}
	tcfg := trace.NewConfig()
	tcfg.NumLegs = *legs
	tg, err := trace.NewGenerator(plan, graph, sg, motion.NewConfig(), tcfg)
	if err != nil {
		return err
	}
	traces := tg.GenerateBatch(trace.DefaultUsers(), *n, stats.NewRNG(*seed))

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(traces); err != nil {
		return fmt.Errorf("encode: %w", err)
	}
	total := 0
	for _, tr := range traces {
		total += len(tr.Legs)
	}
	fmt.Fprintf(os.Stderr, "wrote %d traces (%d legs) on %s\n", len(traces), total, plan.Name)
	return nil
}
