package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"moloc/internal/lint"
)

func TestSelectAnalyzers(t *testing.T) {
	all, err := selectAnalyzers("")
	if err != nil || len(all) != len(lint.Analyzers()) {
		t.Fatalf("default selection: %v, %d analyzers", err, len(all))
	}
	two, err := selectAnalyzers("degnorm, errdrop")
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 || two[0].Name != "degnorm" || two[1].Name != "errdrop" {
		t.Fatalf("got %v", two)
	}
	if _, err := selectAnalyzers("nope"); err == nil {
		t.Error("unknown analyzer should be rejected")
	}
}

func TestMatchPattern(t *testing.T) {
	cwd := filepath.FromSlash("/repo")
	cases := []struct {
		dir, pat string
		want     bool
	}{
		{"/repo/internal/geom", "./...", true},
		{"/repo", "./...", true},
		{"/repo/internal/geom", "...", true},
		{"/repo/internal/geom", "internal/geom", true},
		{"/repo/internal/geom", "internal", false},
		{"/repo/internal/geom", "internal/...", true},
		{"/repo/internal/geometry", "internal/geom/...", false},
		{"/repo/cmd/molocd", "internal/...", false},
	}
	for _, c := range cases {
		if got := matchPattern(filepath.FromSlash(c.dir), cwd, c.pat); got != c.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v", c.dir, c.pat, got, c.want)
		}
	}
}

// TestDriverFindsViolations runs the load-and-analyze path the driver
// uses over a scratch module containing one violation per analyzer.
func TestDriverFindsViolations(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("angles/angles.go", `package angles

import "math"

func Wrap(d float64) float64 { return math.Mod(d, 360) }
`)
	write("seed/seed.go", `package seed

import "time"

func Seed() int64 { return time.Now().UnixNano() }
`)
	write("guard/guard.go", `package guard

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

func (s *S) Peek() int { return s.n }
`)
	write("drop/drop.go", `package drop

import "os"

func Drop() { os.Remove("x") }
`)
	write("snap/snap.go", `package snap

import "sync/atomic"

type S struct {
	//moloc:snapshot
	cell atomic.Pointer[int]
}

func (s *S) Steal() atomic.Pointer[int] { return s.cell }
`)
	write("hot/hot.go", `package hot

//moloc:hotpath
func Gather(m map[int]int, keys []int) []int {
	var out []int
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}
`)
	write("mix/mix.go", `package mix

import "sync/atomic"

type C struct {
	n int64
}

func (c *C) Inc() { atomic.AddInt64(&c.n, 1) }

func (c *C) Peek() int64 { return c.n }
`)
	write("buf/buf.go", `package buf

type S struct {
	//moloc:reuse
	scratch []int
}

func (s *S) Leak() []int { return s.scratch }
`)
	write("internal/wal/wal.go", `package wal

import "os"

func Rotate(dir string) error {
	return os.Rename(dir+"/wal.tmp", dir+"/wal.log")
}
`)
	write("spawn/spawn.go", `package spawn

func work() {}

func Start() {
	go work()
}
`)
	write("stale/stale.go", `package stale

func F() int {
	//lint:ignore errdrop nothing on this line drops an error
	return 1
}
`)

	root, modPath, err := lint.ModulePath(filepath.Join(dir, "angles"))
	if err != nil {
		t.Fatal(err)
	}
	if root != dir || modPath != "scratch" {
		t.Fatalf("ModulePath = %q, %q", root, modPath)
	}
	pkgs, err := lint.Load(root, modPath)
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.RunAll(pkgs, lint.Analyzers())
	got := map[string]bool{}
	for _, d := range diags {
		got[d.Analyzer] = true
	}
	for _, a := range lint.Analyzers() {
		if !got[a.Name] {
			t.Errorf("analyzer %s reported nothing over the scratch module; diags: %v", a.Name, diags)
		}
	}

	// Restricting to one package keeps only its findings.
	sub, err := filterPackages(pkgs, dir, []string{"angles"})
	if err != nil || len(sub) != 1 || !strings.HasSuffix(sub[0].Path, "angles") {
		t.Fatalf("filterPackages: %v, %v", sub, err)
	}
	// A typo'd pattern must not read as a clean run.
	if _, err := filterPackages(pkgs, dir, []string{"anglez"}); err == nil {
		t.Error("unmatched pattern should be an error")
	}
}
