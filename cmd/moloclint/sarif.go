package main

import (
	"encoding/json"
	"io"
	"path/filepath"

	"moloc/internal/lint"
)

// SARIF 2.1.0 output — the Static Analysis Results Interchange Format
// profile GitHub code scanning ingests. Only the required skeleton is
// emitted: one run, the driver's rule table, and one result per
// finding with a physical location. URIs are module-root-relative with
// uriBaseId %SRCROOT%, the convention upload-sarif resolves against
// the checkout root.

const sarifSchema = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// sarifReport builds the SARIF log for one lint run. Every analyzer in
// the run appears in the rule table whether or not it fired; findings
// all carry level "error", matching the driver's non-zero exit.
func sarifReport(root string, analyzers []*lint.Analyzer, diags []lint.Diagnostic) *sarifLog {
	rules := make([]sarifRule, len(analyzers))
	for i, a := range analyzers {
		rules[i] = sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}}
	}
	results := []sarifResult{} // non-nil: clean runs must serialize as "results": []
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       moduleRelative(root, d.Pos.Filename),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	return &sarifLog{
		Schema:  sarifSchema,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "moloclint", Rules: rules}},
			Results: results,
		}},
	}
}

// writeSARIF serializes the report with stable indentation so repeated
// runs over identical findings are byte-identical.
func writeSARIF(w io.Writer, root string, analyzers []*lint.Analyzer, diags []lint.Diagnostic) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(sarifReport(root, analyzers, diags))
}

// jsonFinding is the -json output row, positioned relative to the
// module root with forward slashes so output does not depend on the
// invocation directory.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func writeJSON(w io.Writer, root string, diags []lint.Diagnostic) error {
	rows := []jsonFinding{}
	for _, d := range diags {
		rows = append(rows, jsonFinding{
			File:     moduleRelative(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(rows)
}

// moduleRelative renders a source path relative to the module root in
// forward-slash form, falling back to the path unchanged when it lies
// outside the root.
func moduleRelative(root, filename string) string {
	rel, err := filepath.Rel(root, filename)
	if err != nil || rel == ".." || filepath.IsAbs(rel) ||
		len(rel) > 2 && rel[:3] == ".."+string(filepath.Separator) {
		return filepath.ToSlash(filename)
	}
	return filepath.ToSlash(rel)
}
