package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"moloc/internal/lint"
)

func sampleDiags(root string) []lint.Diagnostic {
	return []lint.Diagnostic{
		{
			Pos:      token.Position{Filename: filepath.Join(root, "internal", "geom", "geom.go"), Line: 12, Column: 9},
			Analyzer: "degnorm",
			Message:  "raw math.Mod on a bearing",
			Pkg:      "moloc/internal/geom",
		},
		{
			Pos:      token.Position{Filename: filepath.Join(root, "cmd", "molocd", "main.go"), Line: 3, Column: 1},
			Analyzer: "waitleak",
			Message:  "goroutine has no WaitGroup Add/Done pair, stop-channel, or completion send",
			Pkg:      "moloc/cmd/molocd",
		},
	}
}

// TestSARIFStructure validates the emitted log against the SARIF 2.1.0
// required shape: $schema and version, one run with a named tool
// driver and rule table, and per-result ruleId, level, message.text,
// and a physical location with a %SRCROOT%-based relative URI.
func TestSARIFStructure(t *testing.T) {
	root := filepath.FromSlash("/work/moloc")
	var buf bytes.Buffer
	if err := writeSARIF(&buf, root, lint.Analyzers(), sampleDiags(root)); err != nil {
		t.Fatal(err)
	}

	var log map[string]any
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log["$schema"] != sarifSchema {
		t.Errorf("$schema = %v", log["$schema"])
	}
	if log["version"] != "2.1.0" {
		t.Errorf("version = %v", log["version"])
	}
	runs, ok := log["runs"].([]any)
	if !ok || len(runs) != 1 {
		t.Fatalf("runs = %v", log["runs"])
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "moloclint" {
		t.Errorf("driver name = %v", driver["name"])
	}
	rules := driver["rules"].([]any)
	if len(rules) != len(lint.Analyzers()) {
		t.Errorf("rule table has %d entries, want %d", len(rules), len(lint.Analyzers()))
	}
	ruleIDs := map[string]bool{}
	for _, r := range rules {
		rule := r.(map[string]any)
		id, _ := rule["id"].(string)
		ruleIDs[id] = true
		if text, _ := rule["shortDescription"].(map[string]any)["text"].(string); text == "" {
			t.Errorf("rule %s has no shortDescription.text", id)
		}
	}

	results := run["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("results = %v", results)
	}
	first := results[0].(map[string]any)
	if !ruleIDs[first["ruleId"].(string)] {
		t.Errorf("result ruleId %v is not in the rule table", first["ruleId"])
	}
	if first["level"] != "error" {
		t.Errorf("level = %v", first["level"])
	}
	if msg, _ := first["message"].(map[string]any)["text"].(string); msg == "" {
		t.Error("result has no message.text")
	}
	loc := first["locations"].([]any)[0].(map[string]any)["physicalLocation"].(map[string]any)
	art := loc["artifactLocation"].(map[string]any)
	if art["uri"] != "internal/geom/geom.go" {
		t.Errorf("uri = %v, want module-relative forward-slash path", art["uri"])
	}
	if art["uriBaseId"] != "%SRCROOT%" {
		t.Errorf("uriBaseId = %v", art["uriBaseId"])
	}
	region := loc["region"].(map[string]any)
	if region["startLine"] != float64(12) || region["startColumn"] != float64(9) {
		t.Errorf("region = %v", region)
	}
}

// TestSARIFCleanRun pins the empty-findings shape: GitHub's upload
// rejects a null results array, so a clean run must serialize
// "results": [].
func TestSARIFCleanRun(t *testing.T) {
	var buf bytes.Buffer
	if err := writeSARIF(&buf, "/work/moloc", lint.Analyzers(), nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"results": []`) {
		t.Errorf("clean run must emit an empty results array, got:\n%s", buf.String())
	}
}

func TestJSONOutput(t *testing.T) {
	root := filepath.FromSlash("/work/moloc")
	var buf bytes.Buffer
	if err := writeJSON(&buf, root, sampleDiags(root)); err != nil {
		t.Fatal(err)
	}
	var rows []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rows); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	want := map[string]any{
		"file": "internal/geom/geom.go", "line": float64(12), "column": float64(9),
		"analyzer": "degnorm", "message": "raw math.Mod on a bearing",
	}
	for k, v := range want {
		if rows[0][k] != v {
			t.Errorf("row[0][%q] = %v, want %v", k, rows[0][k], v)
		}
	}

	var empty bytes.Buffer
	if err := writeJSON(&empty, root, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(empty.String()) != "[]" {
		t.Errorf("clean run must emit [], got %q", empty.String())
	}
}

func TestWholeModulePatterns(t *testing.T) {
	cases := []struct {
		patterns []string
		want     bool
	}{
		{nil, true},
		{[]string{"./..."}, true},
		{[]string{"..."}, true},
		{[]string{"internal/geom"}, false},
		{[]string{"./...", "cmd/..."}, false},
	}
	for _, c := range cases {
		if got := wholeModulePatterns(c.patterns); got != c.want {
			t.Errorf("wholeModulePatterns(%v) = %v, want %v", c.patterns, got, c.want)
		}
	}
}
