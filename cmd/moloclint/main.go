// Command moloclint runs the moloclint static-analysis suite
// (internal/lint) over the repository and exits non-zero on any
// unsuppressed finding. It enforces the numeric and concurrency
// invariants the compiler cannot: bearing arithmetic through
// internal/geom, randomness through internal/stats, mutex-guarded
// struct fields, no silently dropped errors, allocation-free
// //moloc:hotpath functions, and atomic-only access to //moloc:snapshot
// RCU fields.
//
// Usage:
//
//	moloclint [-only degnorm,randsrc] [-list] [-json|-sarif] [-cache file] [packages]
//
// Package arguments are directory paths relative to the module root;
// "./..." (or no argument) analyzes the whole module. Suppress a
// finding with a `//lint:ignore <analyzer> <reason>` comment on the
// flagged line or the line above it.
//
// -json and -sarif switch the stdout format from file:line:col text to
// a JSON array or a SARIF 2.1.0 log (what GitHub code scanning
// ingests); the exit status is 1 on findings in every format. -cache
// names a findings-cache file: when no package changed since the last
// run — per-package content hashes chained through the import graph —
// the findings are replayed without parsing or type-checking, which
// makes a clean repo-wide lint cheap enough for every build. Because
// the cache covers whole-module analysis, -cache rejects package
// patterns other than ./...
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"moloc/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text")
	sarifOut := flag.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log instead of text")
	cachePath := flag.String("cache", "", "findings cache `file`; an unchanged module replays cached findings")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: moloclint [-only names] [-list] [-json|-sarif] [-cache file] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "moloclint: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "moloclint:", err)
		os.Exit(2)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "moloclint:", err)
		os.Exit(2)
	}
	root, modPath, err := lint.ModulePath(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "moloclint:", err)
		os.Exit(2)
	}
	var diags []lint.Diagnostic
	if *cachePath != "" {
		if !wholeModulePatterns(flag.Args()) {
			fmt.Fprintln(os.Stderr, "moloclint: -cache analyzes the whole module; package patterns other than ./... are not supported")
			os.Exit(2)
		}
		var hit bool
		diags, hit, err = lint.RunCached(root, modPath, *cachePath, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "moloclint:", err)
			os.Exit(2)
		}
		if hit {
			fmt.Fprintln(os.Stderr, "moloclint: findings replayed from cache")
		}
	} else {
		pkgs, err := lint.Load(root, modPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "moloclint:", err)
			os.Exit(2)
		}
		pkgs, err = filterPackages(pkgs, cwd, flag.Args())
		if err != nil {
			fmt.Fprintln(os.Stderr, "moloclint:", err)
			os.Exit(2)
		}
		diags = lint.RunAll(pkgs, analyzers)
	}

	switch {
	case *jsonOut:
		err = writeJSON(os.Stdout, root, diags)
	case *sarifOut:
		err = writeSARIF(os.Stdout, root, analyzers, diags)
	default:
		for _, d := range diags {
			pos := d.Pos
			if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				pos.Filename = rel
			}
			fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "moloclint:", err)
		os.Exit(2)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "moloclint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// wholeModulePatterns reports whether the package arguments select the
// whole module — empty, "./...", or "..." — the only shapes the
// findings cache supports.
func wholeModulePatterns(patterns []string) bool {
	for _, pat := range patterns {
		if pat != "./..." && pat != "..." {
			return false
		}
	}
	return true
}

// selectAnalyzers resolves the -only flag to a set of analyzers.
func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	if only == "" {
		return lint.Analyzers(), nil
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a := lint.AnalyzerByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q (run -list for the suite)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// filterPackages restricts the loaded packages to the requested
// patterns. "./..." and "" select everything under the invocation
// directory; "dir" selects that package, "dir/..." its subtree. A
// pattern that matches nothing is an error, so a typo'd path cannot
// read as a clean run.
func filterPackages(pkgs []*lint.Package, cwd string, patterns []string) ([]*lint.Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	matched := make(map[string]bool, len(patterns))
	var out []*lint.Package
	for _, p := range pkgs {
		for _, pat := range patterns {
			if matchPattern(p.Dir, cwd, pat) {
				matched[pat] = true
				out = append(out, p)
				break
			}
		}
	}
	for _, pat := range patterns {
		if !matched[pat] {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	return out, nil
}

// matchPattern reports whether the package directory matches one
// ./-style pattern resolved against the invocation directory.
func matchPattern(pkgDir, cwd, pat string) bool {
	recursive := false
	if pat == "..." || strings.HasSuffix(pat, "/...") {
		recursive = true
		pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
		if pat == "" {
			pat = "."
		}
	}
	base := filepath.Join(cwd, pat)
	if pkgDir == base {
		return true
	}
	if !recursive {
		return false
	}
	rel, err := filepath.Rel(base, pkgDir)
	return err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator))
}
