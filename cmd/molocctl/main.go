// Command molocctl is a demo client for molocd: it simulates a walker
// in the same world the server was built from (same plan and seed),
// streams the walker's IMU samples and WiFi scans to a tracking
// session, and prints each fix the server returns next to the walker's
// true position.
//
// Start the server first:
//
//	go run ./cmd/molocd -addr :8080
//
// Then:
//
//	go run ./cmd/molocctl -server http://localhost:8080
//
// With -stream, the walk's IMU samples, scans, and ticks ride one
// persistent binary stream connection (internal/wire) to molocd's
// -stream-addr listener instead of per-request HTTP; the session is
// still created over HTTP first:
//
//	go run ./cmd/molocd -addr :8080 -stream-addr :8081
//	go run ./cmd/molocctl -server http://localhost:8080 -stream localhost:8081
//
// With a replicated deployment (molocd -follow), "molocctl promote"
// turns the read replica at -server into the leader:
//
//	go run ./cmd/molocctl -server http://localhost:8090 promote
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"moloc/internal/core"
	"moloc/internal/geom"
	"moloc/internal/httpretry"
	"moloc/internal/sensors"
	"moloc/internal/stats"
	"moloc/internal/trace"
	"moloc/internal/wire"
)

// retry backs every request off on 429/5xx/connection refused, so the
// client rides out server restarts and load shedding instead of dying
// on the first transient.
var retry = httpretry.New(stats.NewRNG(stats.HashSeed("molocctl")))

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "molocctl:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		server = flag.String("server", "http://localhost:8080", "molocd base URL")
		stream = flag.String("stream", "", "molocd stream listener (host:port); walk data rides the binary stream instead of HTTP")
		seed   = flag.Int64("seed", 3, "world seed; must match the server's")
		legs   = flag.Int("legs", 10, "walk length in aisle legs")
	)
	flag.Parse()

	// Subcommands that talk to the server without simulating a walk.
	if flag.Arg(0) == "promote" {
		return promote(*server)
	}

	// Rebuild the same world locally to simulate the walker's phone.
	cfg := core.NewConfig()
	cfg.Seed = *seed
	sys, err := core.Build(cfg)
	if err != nil {
		return err
	}
	tcfg := trace.NewConfig()
	tcfg.NumLegs = *legs
	tcfg.PauseProb = 0
	sg, err := sensors.NewGenerator(cfg.Sensors)
	if err != nil {
		return err
	}
	tg, err := trace.NewGenerator(sys.Plan, sys.Graph, sg, cfg.Motion, tcfg)
	if err != nil {
		return err
	}
	user := trace.DefaultUsers()[0]
	walk := tg.Generate(user, stats.NewRNG(2024))

	// Open a session.
	var created struct {
		SessionID string `json:"session_id"`
	}
	if err := post(*server+"/v1/sessions",
		map[string]float64{"height_m": user.HeightM, "weight_kg": user.WeightKg},
		&created); err != nil {
		return fmt.Errorf("create session: %w", err)
	}
	fmt.Printf("session %s on %s; streaming a %d-leg walk by %s\n",
		created.SessionID, *server, len(walk.Legs), user.Name)
	if *stream != "" {
		return streamWalk(sys, walk, created.SessionID, *stream)
	}
	base := *server + "/v1/sessions/" + created.SessionID

	scanRNG := stats.NewRNG(2025)
	nextScan := 0.0
	for _, leg := range walk.Legs {
		if err := post(base+"/imu", map[string]interface{}{"samples": leg.Samples}, nil); err != nil {
			return fmt.Errorf("imu: %w", err)
		}
		for _, s := range leg.Samples {
			if s.T < nextScan {
				continue
			}
			frac := (s.T - leg.T0) / (leg.T1 - leg.T0)
			pos := sys.Plan.LocPos(leg.From).Lerp(sys.Plan.LocPos(leg.To), frac)
			rss := sys.Model.Sample(pos, scanRNG)
			if err := post(base+"/scan", map[string]interface{}{"t": s.T, "rss": rss}, nil); err != nil {
				return fmt.Errorf("scan: %w", err)
			}
			nextScan = s.T + 0.5
		}
		var fix struct {
			T   float64 `json:"t"`
			Loc int     `json:"loc"`
			X   float64 `json:"x"`
			Y   float64 `json:"y"`
		}
		status, err := postStatus(base+"/tick", map[string]float64{"t": leg.T1}, &fix)
		if err != nil {
			return fmt.Errorf("tick: %w", err)
		}
		if status == http.StatusOK {
			truth := sys.Plan.LocPos(leg.To)
			fmt.Printf("t=%5.1fs server says location %2d %v; walker is at %v (%.1fm off)\n",
				fix.T, fix.Loc, geom.Pt(fix.X, fix.Y), truth,
				geom.Pt(fix.X, fix.Y).Dist(truth))
		}
	}
	return nil
}

// streamWalk replays the walk over one persistent binary stream
// connection: the same IMU batches, scans, and ticks the HTTP path
// issues as individual requests, answered with fix frames. The wire
// client redials and resumes on its own, so the walk rides out a
// molocd restart the same way the HTTP path's retry policy does.
func streamWalk(sys *core.System, walk *trace.Trace, sessionID, addr string) error {
	c, err := wire.DialStream(addr, "molocctl-"+sessionID, wire.ClientOptions{
		SessionID:      sessionID,
		RedialAttempts: 5,
		RedialWait:     200 * time.Millisecond,
	})
	if err != nil {
		return fmt.Errorf("dial stream %s: %w", addr, err)
	}
	defer func() {
		_ = c.Close() // the walk is already delivered and ticked
	}()

	scanRNG := stats.NewRNG(2025)
	nextScan := 0.0
	for _, leg := range walk.Legs {
		if err := c.SendIMU(leg.Samples); err != nil {
			return fmt.Errorf("stream imu: %w", err)
		}
		for _, s := range leg.Samples {
			if s.T < nextScan {
				continue
			}
			frac := (s.T - leg.T0) / (leg.T1 - leg.T0)
			pos := sys.Plan.LocPos(leg.From).Lerp(sys.Plan.LocPos(leg.To), frac)
			rss := sys.Model.Sample(pos, scanRNG)
			if err := c.SendScan(s.T, rss); err != nil {
				return fmt.Errorf("stream scan: %w", err)
			}
			nextScan = s.T + 0.5
		}
		loc, _, ok, err := c.Tick(leg.T1)
		if err != nil {
			return fmt.Errorf("stream tick: %w", err)
		}
		if ok {
			fixPos := sys.Plan.LocPos(loc)
			truth := sys.Plan.LocPos(leg.To)
			fmt.Printf("t=%5.1fs server says location %2d %v; walker is at %v (%.1fm off)\n",
				leg.T1, loc, fixPos, truth, fixPos.Dist(truth))
		}
	}
	return nil
}

// promote flips the read replica at base into a leader via the
// idempotent admin endpoint and reports the resulting role.
func promote(base string) error {
	var resp struct {
		Role     string `json:"role"`
		Promoted bool   `json:"promoted"`
	}
	if err := post(base+"/v1/admin/promote", struct{}{}, &resp); err != nil {
		return fmt.Errorf("promote: %w", err)
	}
	if resp.Promoted {
		fmt.Printf("%s promoted: now the leader and accepting observations\n", base)
	} else {
		fmt.Printf("%s already the leader; nothing to do\n", base)
	}
	return nil
}

// post sends JSON and optionally decodes a JSON response, requiring a
// 2xx status.
func post(url string, body interface{}, out interface{}) error {
	status, err := postStatus(url, body, out)
	if err != nil {
		return err
	}
	if status < 200 || status >= 300 {
		return fmt.Errorf("%s: status %d", url, status)
	}
	return nil
}

func postStatus(url string, body interface{}, out interface{}) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := retry.Do(http.MethodPost, url, "application/json", data)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode >= 200 && resp.StatusCode < 300 &&
		resp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}
