package main

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

func TestPostStatusDecodes2xx(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusCreated)
		w.Write([]byte(`{"session_id":"s9"}`))
	}))
	defer ts.Close()
	var out struct {
		SessionID string `json:"session_id"`
	}
	status, err := postStatus(ts.URL, map[string]int{"x": 1}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusCreated || out.SessionID != "s9" {
		t.Errorf("status=%d out=%+v", status, out)
	}
}

func TestPostRequires2xx(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	defer ts.Close()
	if err := post(ts.URL, nil, nil); err == nil {
		t.Error("non-2xx should error")
	}
}

func TestPostStatusRetriesTransient(t *testing.T) {
	var calls int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"session_id":"s1"}`))
	}))
	defer ts.Close()
	var out struct {
		SessionID string `json:"session_id"`
	}
	status, err := postStatus(ts.URL, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK || out.SessionID != "s1" || atomic.LoadInt32(&calls) != 2 {
		t.Errorf("status=%d out=%+v calls=%d", status, out, calls)
	}
}

func TestPostStatusSkipsNoContent(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	defer ts.Close()
	var out map[string]string
	status, err := postStatus(ts.URL, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusNoContent || out != nil {
		t.Errorf("status=%d out=%v", status, out)
	}
}
