// Command experiments regenerates every table and figure of the paper's
// evaluation plus the DESIGN.md ablations, printing paper-style rows
// with the paper's reference values alongside the measured ones.
//
// Usage:
//
//	experiments [-seed N] [-only id] [-markdown]
package main

import (
	"flag"
	"fmt"
	"os"

	"moloc/internal/exp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed     = flag.Int64("seed", 3, "experiment seed")
		only     = flag.String("only", "", "run a single experiment by ID (fig4, fig6, fig7, fig8, tab1, abl-...)")
		markdown = flag.Bool("markdown", false, "emit Markdown sections instead of plain text")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	ctx, err := exp.NewDefaultContext(*seed)
	if err != nil {
		return err
	}
	results, err := ctx.All()
	if err != nil {
		return err
	}
	if *list {
		for _, r := range results {
			fmt.Printf("%-15s %s\n", r.ID, r.Title)
		}
		return nil
	}
	for _, r := range results {
		if *only != "" && r.ID != *only {
			continue
		}
		if *markdown {
			fmt.Printf("### %s — %s\n\n```\n", r.ID, r.Title)
			for _, line := range r.Lines {
				fmt.Println(line)
			}
			fmt.Print("```\n\n")
		} else {
			fmt.Printf("== %s: %s ==\n", r.ID, r.Title)
			for _, line := range r.Lines {
				fmt.Println(" ", line)
			}
			fmt.Println()
		}
	}
	return nil
}
