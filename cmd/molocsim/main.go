// Command molocsim runs the full MoLoc pipeline end to end on a chosen
// floor plan and prints the headline comparison between MoLoc and the
// WiFi fingerprinting baseline, per AP count.
//
// Usage:
//
//	molocsim [-seed N] [-plan office|mall|museum] [-train N] [-test N] [-aps list]
//
// With -stream, molocsim instead acts as a fleet load generator: it
// opens -streams persistent binary connections (internal/wire) to a
// running molocd's -stream-addr listener and pushes jittered
// crowdsourced observation batches at it, reporting throughput. The
// target server must have been built from the same plan and seed:
//
//	molocsim -stream localhost:8081 -streams 16 -batches 200
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"moloc/internal/core"
	"moloc/internal/eval"
	"moloc/internal/floorplan"
	"moloc/internal/geom"
	"moloc/internal/motion"
	"moloc/internal/motiondb"
	"moloc/internal/stats"
	"moloc/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "molocsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed     = flag.Int64("seed", 3, "experiment seed")
		planName = flag.String("plan", "office", "floor plan: office, mall, or museum")
		train    = flag.Int("train", 150, "number of training traces")
		test     = flag.Int("test", 34, "number of test traces")
		apCounts = flag.String("aps", "4,5,6", "comma-separated AP counts to evaluate")
		export   = flag.String("export", "", "directory to export the full-AP deployment bundle to")
		stream   = flag.String("stream", "", "molocd stream listener (host:port); run a fleet observation load instead of the offline evaluation")
		streams  = flag.Int("streams", 8, "concurrent stream connections in -stream mode")
		batches  = flag.Int("batches", 200, "observation batches per stream in -stream mode")
		batchLen = flag.Int("batch-size", 64, "observations per batch in -stream mode")
	)
	flag.Parse()

	cfg := core.NewConfig()
	cfg.Seed = *seed
	cfg.NumTrainTraces = *train
	cfg.NumTestTraces = *test
	switch *planName {
	case "office":
		// defaults
	case "mall":
		cfg.Plan = floorplan.Mall()
		cfg.AdjDist = floorplan.MallAdjDist
	case "museum":
		cfg.Plan = floorplan.Museum()
		cfg.AdjDist = floorplan.MuseumAdjDist
	default:
		return fmt.Errorf("unknown plan %q", *planName)
	}

	sys, err := core.Build(cfg)
	if err != nil {
		return err
	}
	if *stream != "" {
		return streamLoad(sys, *stream, *streams, *batches, *batchLen)
	}
	fmt.Printf("plan=%s locations=%d aps=%d train=%d test=%d seed=%d\n",
		sys.Plan.Name, sys.Plan.NumLocs(), sys.Model.NumAPs(),
		len(sys.TrainTraces), len(sys.TestTraces), cfg.Seed)

	counts, err := parseCounts(*apCounts, sys.Model.NumAPs())
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-10s %9s %9s %9s %9s\n",
		"setting", "method", "accuracy", "mean(m)", "p50(m)", "max(m)")
	for _, n := range counts {
		dep, err := sys.Deploy(sys.AllAPs()[:n])
		if err != nil {
			return err
		}
		ml, err := dep.NewMoLoc()
		if err != nil {
			return err
		}
		for _, pair := range []struct {
			name string
			sum  eval.Summary
		}{
			{"WiFi", eval.Summarize(dep.Evaluate(dep.NewWiFi()))},
			{"MoLoc", eval.Summarize(dep.Evaluate(ml))},
		} {
			fmt.Printf("%-8s %-10s %8.1f%% %9.2f %9.2f %9.2f\n",
				fmt.Sprintf("%d-AP", n), pair.name,
				pair.sum.Accuracy*100, pair.sum.MeanErr,
				pair.sum.CDF.Median(), pair.sum.MaxErr)
		}
	}
	dirErrs, offErrs := sys.MotionDBErrors()
	fmt.Printf("motion-db entries=%d dir-med=%.1fdeg off-med=%.2fm\n",
		sys.MDB.NumEntries(), median(dirErrs), median(offErrs))

	if *export != "" {
		dep, err := sys.Deploy(sys.AllAPs())
		if err != nil {
			return err
		}
		if err := dep.SaveBundle(*export); err != nil {
			return err
		}
		fmt.Printf("deployment bundle exported to %s (serve with: molocd -bundle %s)\n",
			*export, *export)
	}
	return nil
}

// streamLoad drives a fleet of observation streams at a running molocd:
// each worker owns one persistent wire connection and pushes jittered
// ground-truth observations for the deployment's trained pairs. It is
// the load half of the streaming-ingest benchmark run against a real
// process (EXPERIMENTS.md), and it exercises the exact client path the
// phones use — binary frames, cumulative acks, redial with resume.
func streamLoad(sys *core.System, addr string, streams, batches, batchLen int) error {
	pairs := sys.MDB.Pairs()
	if len(pairs) == 0 {
		return errors.New("motion database has no trained pairs to observe")
	}
	if streams < 1 || batches < 1 || batchLen < 1 {
		return fmt.Errorf("streams (%d), batches (%d), and batch-size (%d) must all be >= 1",
			streams, batches, batchLen)
	}
	var (
		wg      sync.WaitGroup
		sent    atomic.Int64
		resumes atomic.Int64
		errs    = make(chan error, streams)
	)
	start := time.Now()
	for w := 0; w < streams; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := wire.DialStream(addr, fmt.Sprintf("molocsim-%d", w), wire.ClientOptions{
				RedialAttempts: 10,
				RedialWait:     100 * time.Millisecond,
			})
			if err != nil {
				errs <- fmt.Errorf("stream %d: dial %s: %w", w, addr, err)
				return
			}
			defer func() {
				_ = c.Close() // every batch is already acked by WaitAcked below
			}()
			rng := stats.NewRNG(stats.HashSeed("molocsim-stream", fmt.Sprint(w)))
			obs := make([]motiondb.Observation, batchLen)
			for b := 0; b < batches; b++ {
				pair := pairs[(w+b)%len(pairs)]
				gtDir, gtOff := floorplan.GroundTruthRLM(sys.Plan, pair[0], pair[1])
				for k := range obs {
					obs[k] = motiondb.Observation{
						From: pair[0], To: pair[1],
						RLM: motion.RLM{
							Dir: geom.NormalizeDeg(gtDir + rng.Uniform(-2, 2)),
							Off: gtOff + rng.Uniform(0, 0.3),
						},
					}
				}
				if err := c.SendObservations(obs); err != nil {
					errs <- fmt.Errorf("stream %d: batch %d: %w", w, b, err)
					return
				}
				sent.Add(int64(batchLen))
			}
			if err := c.WaitAcked(); err != nil {
				errs <- fmt.Errorf("stream %d: wait acked: %w", w, err)
				return
			}
			resumes.Add(int64(c.Resumes()))
		}(w)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return err
	}
	elapsed := time.Since(start)
	total := sent.Load()
	fmt.Printf("streamed %d observations (%d batches of %d over %d streams) in %v: %.0f obs/s, %d resumes\n",
		total, streams*batches, batchLen, streams, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds(), resumes.Load())
	return nil
}

func parseCounts(s string, maxAPs int) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad AP count %q: %w", p, err)
		}
		if n < 1 || n > maxAPs {
			return nil, fmt.Errorf("AP count %d out of range [1,%d]", n, maxAPs)
		}
		out = append(out, n)
	}
	return out, nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}
