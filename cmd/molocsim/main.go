// Command molocsim runs the full MoLoc pipeline end to end on a chosen
// floor plan and prints the headline comparison between MoLoc and the
// WiFi fingerprinting baseline, per AP count.
//
// Usage:
//
//	molocsim [-seed N] [-plan office|mall|museum] [-train N] [-test N] [-aps list]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"moloc/internal/core"
	"moloc/internal/eval"
	"moloc/internal/floorplan"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "molocsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed     = flag.Int64("seed", 3, "experiment seed")
		planName = flag.String("plan", "office", "floor plan: office, mall, or museum")
		train    = flag.Int("train", 150, "number of training traces")
		test     = flag.Int("test", 34, "number of test traces")
		apCounts = flag.String("aps", "4,5,6", "comma-separated AP counts to evaluate")
		export   = flag.String("export", "", "directory to export the full-AP deployment bundle to")
	)
	flag.Parse()

	cfg := core.NewConfig()
	cfg.Seed = *seed
	cfg.NumTrainTraces = *train
	cfg.NumTestTraces = *test
	switch *planName {
	case "office":
		// defaults
	case "mall":
		cfg.Plan = floorplan.Mall()
		cfg.AdjDist = floorplan.MallAdjDist
	case "museum":
		cfg.Plan = floorplan.Museum()
		cfg.AdjDist = floorplan.MuseumAdjDist
	default:
		return fmt.Errorf("unknown plan %q", *planName)
	}

	sys, err := core.Build(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("plan=%s locations=%d aps=%d train=%d test=%d seed=%d\n",
		sys.Plan.Name, sys.Plan.NumLocs(), sys.Model.NumAPs(),
		len(sys.TrainTraces), len(sys.TestTraces), cfg.Seed)

	counts, err := parseCounts(*apCounts, sys.Model.NumAPs())
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-10s %9s %9s %9s %9s\n",
		"setting", "method", "accuracy", "mean(m)", "p50(m)", "max(m)")
	for _, n := range counts {
		dep, err := sys.Deploy(sys.AllAPs()[:n])
		if err != nil {
			return err
		}
		ml, err := dep.NewMoLoc()
		if err != nil {
			return err
		}
		for _, pair := range []struct {
			name string
			sum  eval.Summary
		}{
			{"WiFi", eval.Summarize(dep.Evaluate(dep.NewWiFi()))},
			{"MoLoc", eval.Summarize(dep.Evaluate(ml))},
		} {
			fmt.Printf("%-8s %-10s %8.1f%% %9.2f %9.2f %9.2f\n",
				fmt.Sprintf("%d-AP", n), pair.name,
				pair.sum.Accuracy*100, pair.sum.MeanErr,
				pair.sum.CDF.Median(), pair.sum.MaxErr)
		}
	}
	dirErrs, offErrs := sys.MotionDBErrors()
	fmt.Printf("motion-db entries=%d dir-med=%.1fdeg off-med=%.2fm\n",
		sys.MDB.NumEntries(), median(dirErrs), median(offErrs))

	if *export != "" {
		dep, err := sys.Deploy(sys.AllAPs())
		if err != nil {
			return err
		}
		if err := dep.SaveBundle(*export); err != nil {
			return err
		}
		fmt.Printf("deployment bundle exported to %s (serve with: molocd -bundle %s)\n",
			*export, *export)
	}
	return nil
}

func parseCounts(s string, maxAPs int) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad AP count %q: %w", p, err)
		}
		if n < 1 || n > maxAPs {
			return nil, fmt.Errorf("AP count %d out of range [1,%d]", n, maxAPs)
		}
		out = append(out, n)
	}
	return out, nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}
