// Command molocsim runs the full MoLoc pipeline end to end on a chosen
// floor plan and prints the headline comparison between MoLoc and the
// WiFi fingerprinting baseline, per AP count.
//
// Usage:
//
//	molocsim [-seed N] [-plan office|mall|museum] [-train N] [-test N] [-aps list]
//
// With -stream, molocsim instead acts as a fleet load generator: it
// opens -streams persistent binary connections (internal/wire) to a
// running molocd's -stream-addr listener and pushes jittered
// crowdsourced observation batches at it, reporting throughput. The
// target server must have been built from the same plan and seed:
//
//	molocsim -stream localhost:8081 -streams 16 -batches 200
//
// With -sessions, molocsim runs the city-scale serving load instead
// (Scalability/sessions_100k): it creates N server-paced tracking
// sessions ({"paced":true}) against a running molocd's HTTP API, feeds
// them WiFi scans from -feeders concurrent connections for -load-for,
// and reports fixes/sec plus p50/p99 fix latency from the server's
// paced_fix_seconds histogram (slot fire → fix produced), alongside the
// paced-tick : snapshot-load amortization ratio. The target must be
// built from the same plan and seed and run with -paced-capable limits:
//
//	molocd -max-sessions 120000 &
//	molocsim -sessions 100000 -api localhost:8080 -load-for 20s
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"moloc/internal/core"
	"moloc/internal/eval"
	"moloc/internal/floorplan"
	"moloc/internal/geom"
	"moloc/internal/motion"
	"moloc/internal/motiondb"
	"moloc/internal/obs"
	"moloc/internal/stats"
	"moloc/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "molocsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed     = flag.Int64("seed", 3, "experiment seed")
		planName = flag.String("plan", "office", "floor plan: office, mall, or museum")
		train    = flag.Int("train", 150, "number of training traces")
		test     = flag.Int("test", 34, "number of test traces")
		apCounts = flag.String("aps", "4,5,6", "comma-separated AP counts to evaluate")
		export   = flag.String("export", "", "directory to export the full-AP deployment bundle to")
		stream   = flag.String("stream", "", "molocd stream listener (host:port); run a fleet observation load instead of the offline evaluation")
		streams  = flag.Int("streams", 8, "concurrent stream connections in -stream mode")
		batches  = flag.Int("batches", 200, "observation batches per stream in -stream mode")
		batchLen = flag.Int("batch-size", 64, "observations per batch in -stream mode")
		sessions = flag.Int("sessions", 0, "city-scale serving load: create N server-paced sessions against -api and report fixes/sec + fix-latency percentiles")
		api      = flag.String("api", "localhost:8080", "molocd HTTP API address in -sessions mode")
		feeders  = flag.Int("feeders", 64, "concurrent feeder connections in -sessions mode")
		loadFor  = flag.Duration("load-for", 15*time.Second, "scan-feeding measurement window in -sessions mode")
	)
	flag.Parse()

	cfg := core.NewConfig()
	cfg.Seed = *seed
	cfg.NumTrainTraces = *train
	cfg.NumTestTraces = *test
	switch *planName {
	case "office":
		// defaults
	case "mall":
		cfg.Plan = floorplan.Mall()
		cfg.AdjDist = floorplan.MallAdjDist
	case "museum":
		cfg.Plan = floorplan.Museum()
		cfg.AdjDist = floorplan.MuseumAdjDist
	default:
		return fmt.Errorf("unknown plan %q", *planName)
	}

	sys, err := core.Build(cfg)
	if err != nil {
		return err
	}
	if *stream != "" {
		return streamLoad(sys, *stream, *streams, *batches, *batchLen)
	}
	if *sessions > 0 {
		return sessionLoad(sys, *api, *sessions, *feeders, *loadFor)
	}
	fmt.Printf("plan=%s locations=%d aps=%d train=%d test=%d seed=%d\n",
		sys.Plan.Name, sys.Plan.NumLocs(), sys.Model.NumAPs(),
		len(sys.TrainTraces), len(sys.TestTraces), cfg.Seed)

	counts, err := parseCounts(*apCounts, sys.Model.NumAPs())
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-10s %9s %9s %9s %9s\n",
		"setting", "method", "accuracy", "mean(m)", "p50(m)", "max(m)")
	for _, n := range counts {
		dep, err := sys.Deploy(sys.AllAPs()[:n])
		if err != nil {
			return err
		}
		ml, err := dep.NewMoLoc()
		if err != nil {
			return err
		}
		for _, pair := range []struct {
			name string
			sum  eval.Summary
		}{
			{"WiFi", eval.Summarize(dep.Evaluate(dep.NewWiFi()))},
			{"MoLoc", eval.Summarize(dep.Evaluate(ml))},
		} {
			fmt.Printf("%-8s %-10s %8.1f%% %9.2f %9.2f %9.2f\n",
				fmt.Sprintf("%d-AP", n), pair.name,
				pair.sum.Accuracy*100, pair.sum.MeanErr,
				pair.sum.CDF.Median(), pair.sum.MaxErr)
		}
	}
	dirErrs, offErrs := sys.MotionDBErrors()
	fmt.Printf("motion-db entries=%d dir-med=%.1fdeg off-med=%.2fm\n",
		sys.MDB.NumEntries(), median(dirErrs), median(offErrs))

	if *export != "" {
		dep, err := sys.Deploy(sys.AllAPs())
		if err != nil {
			return err
		}
		if err := dep.SaveBundle(*export); err != nil {
			return err
		}
		fmt.Printf("deployment bundle exported to %s (serve with: molocd -bundle %s)\n",
			*export, *export)
	}
	return nil
}

// streamLoad drives a fleet of observation streams at a running molocd:
// each worker owns one persistent wire connection and pushes jittered
// ground-truth observations for the deployment's trained pairs. It is
// the load half of the streaming-ingest benchmark run against a real
// process (EXPERIMENTS.md), and it exercises the exact client path the
// phones use — binary frames, cumulative acks, redial with resume.
func streamLoad(sys *core.System, addr string, streams, batches, batchLen int) error {
	pairs := sys.MDB.Pairs()
	if len(pairs) == 0 {
		return errors.New("motion database has no trained pairs to observe")
	}
	if streams < 1 || batches < 1 || batchLen < 1 {
		return fmt.Errorf("streams (%d), batches (%d), and batch-size (%d) must all be >= 1",
			streams, batches, batchLen)
	}
	var (
		wg      sync.WaitGroup
		sent    atomic.Int64
		resumes atomic.Int64
		errs    = make(chan error, streams)
	)
	start := time.Now()
	for w := 0; w < streams; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := wire.DialStream(addr, fmt.Sprintf("molocsim-%d", w), wire.ClientOptions{
				RedialAttempts: 10,
				RedialWait:     100 * time.Millisecond,
			})
			if err != nil {
				errs <- fmt.Errorf("stream %d: dial %s: %w", w, addr, err)
				return
			}
			defer func() {
				_ = c.Close() // every batch is already acked by WaitAcked below
			}()
			rng := stats.NewRNG(stats.HashSeed("molocsim-stream", fmt.Sprint(w)))
			obs := make([]motiondb.Observation, batchLen)
			for b := 0; b < batches; b++ {
				pair := pairs[(w+b)%len(pairs)]
				gtDir, gtOff := floorplan.GroundTruthRLM(sys.Plan, pair[0], pair[1])
				for k := range obs {
					obs[k] = motiondb.Observation{
						From: pair[0], To: pair[1],
						RLM: motion.RLM{
							Dir: geom.NormalizeDeg(gtDir + rng.Uniform(-2, 2)),
							Off: gtOff + rng.Uniform(0, 0.3),
						},
					}
				}
				if err := c.SendObservations(obs); err != nil {
					errs <- fmt.Errorf("stream %d: batch %d: %w", w, b, err)
					return
				}
				sent.Add(int64(batchLen))
			}
			if err := c.WaitAcked(); err != nil {
				errs <- fmt.Errorf("stream %d: wait acked: %w", w, err)
				return
			}
			resumes.Add(int64(c.Resumes()))
		}(w)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return err
	}
	elapsed := time.Since(start)
	total := sent.Load()
	fmt.Printf("streamed %d observations (%d batches of %d over %d streams) in %v: %.0f obs/s, %d resumes\n",
		total, streams*batches, batchLen, streams, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds(), resumes.Load())
	return nil
}

// metricsSnap is the subset of /v1/metricsz molocsim consumes: the
// session gauge plus the embedded obs registry snapshot whose counter
// deltas and histogram-bucket deltas the load report is computed from.
type metricsSnap struct {
	Sessions int `json:"sessions"`
	obs.Snapshot
}

// sessionLoad is the city-scale serving experiment
// (Scalability/sessions_N): create n server-paced sessions over the
// HTTP API, feed them WiFi scans sampled from the deployment's own
// radio model, and report fix throughput and latency percentiles from
// the server's metrics deltas. The sessions all sit on molocd's tick
// wheel for the whole window — the wheel's due-scan cost covers every
// one of them, while fixes flow for the sessions receiving scans.
func sessionLoad(sys *core.System, api string, n, feeders int, dur time.Duration) error {
	if n < 1 || feeders < 1 {
		return fmt.Errorf("sessions (%d) and feeders (%d) must be >= 1", n, feeders)
	}
	if feeders > n {
		feeders = n
	}
	base := api
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        feeders * 2,
			MaxIdleConnsPerHost: feeders * 2,
		},
		Timeout: 30 * time.Second,
	}

	// One representative scan per reference location, sampled from the
	// same radio model the server's radio map was surveyed with.
	rng := stats.NewRNG(stats.HashSeed("molocsim-sessions"))
	locScans := make([][]float64, sys.Plan.NumLocs())
	for i := range locScans {
		locScans[i] = sys.Model.Sample(sys.Plan.LocPos(i+1), rng) // reference IDs are 1-based
	}

	// Phase 1: create n paced sessions.
	ids := make([]string, n)
	errs := make(chan error, feeders)
	var wg sync.WaitGroup
	start := time.Now()
	for f := 0; f < feeders; f++ {
		lo, hi := n*f/feeders, n*(f+1)/feeders
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				id, err := createPaced(client, base)
				if err != nil {
					errs <- fmt.Errorf("create session %d: %w", i, err)
					return
				}
				ids[i] = id
			}
		}(lo, hi)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
	}
	created := time.Since(start)
	fmt.Printf("created %d paced sessions in %v (%.0f/s)\n",
		n, created.Round(time.Millisecond), float64(n)/created.Seconds())

	before, err := scrapeMetrics(client, base)
	if err != nil {
		return err
	}

	// Phase 2: feed scans for the measurement window. Each feeder owns
	// a disjoint slice of sessions and cycles it, advancing every
	// session's clock one localization interval per scan — so every
	// scan closes one interval, which the server's wheel turns into one
	// fix at the next due slot.
	reg := obs.NewRegistry()
	reqHist := reg.Histogram("scan_request_seconds", obs.LatencyBuckets)
	var scansSent atomic.Int64
	deadline := time.Now().Add(dur)
	for f := 0; f < feeders; f++ {
		lo, hi := n*f/feeders, n*(f+1)/feeders
		wg.Add(1)
		go func(f, lo, hi int) {
			defer wg.Done()
			ts := make([]float64, hi-lo)
			var body bytes.Buffer
			for i := lo; time.Now().Before(deadline); i++ {
				if i >= hi {
					i = lo
				}
				loc := i % len(locScans)
				body.Reset()
				fmt.Fprintf(&body, `{"t":%g,"rss":[`, ts[i-lo])
				for k, v := range locScans[loc] {
					if k > 0 {
						body.WriteByte(',')
					}
					fmt.Fprintf(&body, "%.2f", v)
				}
				body.WriteString("]}")
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/sessions/"+ids[i]+"/scan",
					"application/json", bytes.NewReader(body.Bytes()))
				if err != nil {
					errs <- fmt.Errorf("feeder %d: scan: %w", f, err)
					return
				}
				//lint:ignore errdrop the drain is best-effort connection reuse; the status code below is the signal
				_, _ = io.Copy(io.Discard, resp.Body)
				//lint:ignore errdrop a close error on a drained body adds nothing to the status check below
				_ = resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					errs <- fmt.Errorf("feeder %d: scan on %s: HTTP %d", f, ids[i], resp.StatusCode)
					return
				}
				reqHist.Observe(time.Since(t0).Seconds())
				ts[i-lo] += 3 // one localization interval per scan
				scansSent.Add(1)
			}
		}(f, lo, hi)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
	}
	// Let the wheel drain the last intervals before the closing scrape.
	time.Sleep(1500 * time.Millisecond)
	after, err := scrapeMetrics(client, base)
	if err != nil {
		return err
	}

	counter := func(name string) int64 { return after.Counters[name] - before.Counters[name] }
	fixes := counter("fixes{mode=moloc}") + counter("fixes{mode=fingerprint}")
	ticks := counter("paced_ticks")
	loads := counter("paced_snapshot_loads")
	shed := counter("pool_shed_total")
	fixHist := histDelta(before.Histograms["paced_fix_seconds"], after.Histograms["paced_fix_seconds"])
	reqSnap := reg.Snapshot().Histograms["scan_request_seconds"]

	label := fmt.Sprintf("Scalability/sessions_%s", countLabel(n))
	fmt.Printf("%s: %d live sessions on the wheel (paced_scheduled=%d)\n",
		label, after.Sessions, after.Gauges["paced_scheduled"])
	fmt.Printf("%s: %.0f scans/s in, %.0f fixes/s out over %v (%d fixes, %d paced ticks, shed=%d)\n",
		label, float64(scansSent.Load())/dur.Seconds(), float64(fixes)/dur.Seconds(),
		dur, fixes, ticks, shed)
	if loads > 0 {
		fmt.Printf("%s: snapshot loads amortized %.1fx (%d ticks / %d batch loads)\n",
			label, float64(ticks)/float64(loads), ticks, loads)
	}
	fmt.Printf("%s: fix latency p50=%.2fms p99=%.2fms (slot fire -> fix, server-side)\n",
		label, fixHist.Quantile(0.5)*1e3, fixHist.Quantile(0.99)*1e3)
	fmt.Printf("%s: scan request p50=%.2fms p99=%.2fms (client-side HTTP)\n",
		label, reqSnap.Quantile(0.5)*1e3, reqSnap.Quantile(0.99)*1e3)
	return nil
}

// createPaced creates one server-paced session and returns its id.
func createPaced(client *http.Client, base string) (string, error) {
	resp, err := client.Post(base+"/v1/sessions", "application/json",
		strings.NewReader(`{"height_m":1.7,"weight_kg":65,"paced":true}`))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		//lint:ignore errdrop the body is best-effort context for the HTTP error already being returned
		b, _ := io.ReadAll(resp.Body)
		return "", fmt.Errorf("HTTP %d: %s", resp.StatusCode, b)
	}
	var cr struct {
		SessionID string `json:"session_id"`
		Paced     bool   `json:"paced"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		return "", err
	}
	if !cr.Paced {
		return "", errors.New("server did not acknowledge pacing (paced=false)")
	}
	return cr.SessionID, nil
}

// scrapeMetrics fetches and decodes /v1/metricsz.
func scrapeMetrics(client *http.Client, base string) (*metricsSnap, error) {
	resp, err := client.Get(base + "/v1/metricsz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var m metricsSnap
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("decode /v1/metricsz: %w", err)
	}
	return &m, nil
}

// histDelta subtracts two cumulative histogram snapshots of the same
// metric, yielding the distribution observed between the scrapes.
func histDelta(before, after obs.HistogramSnapshot) obs.HistogramSnapshot {
	d := obs.HistogramSnapshot{
		Bounds: after.Bounds,
		Counts: make([]int64, len(after.Counts)),
		Count:  after.Count - before.Count,
		Sum:    after.Sum - before.Sum,
	}
	for i := range after.Counts {
		d.Counts[i] = after.Counts[i]
		if i < len(before.Counts) {
			d.Counts[i] -= before.Counts[i]
		}
	}
	return d
}

// countLabel compresses a session count for the report label
// (100000 -> "100k").
func countLabel(n int) string {
	if n%1000 == 0 && n >= 1000 {
		return fmt.Sprintf("%dk", n/1000)
	}
	return strconv.Itoa(n)
}

func parseCounts(s string, maxAPs int) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad AP count %q: %w", p, err)
		}
		if n < 1 || n > maxAPs {
			return nil, fmt.Errorf("AP count %d out of range [1,%d]", n, maxAPs)
		}
		out = append(out, n)
	}
	return out, nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}
