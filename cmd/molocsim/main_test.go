package main

import "testing"

func TestParseCounts(t *testing.T) {
	got, err := parseCounts("4, 5,6", 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 4 || got[2] != 6 {
		t.Errorf("parseCounts = %v", got)
	}
	if _, err := parseCounts("7", 6); err == nil {
		t.Error("out-of-range count should error")
	}
	if _, err := parseCounts("x", 6); err == nil {
		t.Error("non-numeric count should error")
	}
	if _, err := parseCounts("0", 6); err == nil {
		t.Error("zero should error")
	}
}

func TestMedian(t *testing.T) {
	if got := median(nil); got != 0 {
		t.Errorf("empty median = %v", got)
	}
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v", got)
	}
	if got := median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
}
