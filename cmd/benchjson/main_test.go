package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: moloc
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkFingerprintKNN/reference         	  432338	      2394 ns/op	     992 B/op	       5 allocs/op
BenchmarkFingerprintKNN/compiled          	 3331237	       351.2 ns/op	       0 B/op	       0 allocs/op
BenchmarkAccuracy                         	      12	  98765432 ns/op	         2.100 m/op
BenchmarkNoMem-8                          	 1000000	      1234 ns/op
PASS
ok  	moloc	13.744s
`

func TestParse(t *testing.T) {
	s, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if s.Goos != "linux" || s.Goarch != "amd64" || s.Pkg != "moloc" ||
		!strings.Contains(s.CPU, "Xeon") {
		t.Errorf("headers: %+v", s)
	}
	if len(s.Benchmarks) != 4 {
		t.Fatalf("got %d records, want 4: %+v", len(s.Benchmarks), s.Benchmarks)
	}

	ref := s.Benchmarks[0]
	if ref.Name != "FingerprintKNN/reference" || ref.Iterations != 432338 ||
		ref.NsPerOp != 2394 || ref.BPerOp == nil || *ref.BPerOp != 992 ||
		ref.AllocsPerOp == nil || *ref.AllocsPerOp != 5 {
		t.Errorf("reference record: %+v", ref)
	}
	cmp := s.Benchmarks[1]
	if cmp.NsPerOp != 351.2 || *cmp.AllocsPerOp != 0 {
		t.Errorf("compiled record: %+v", cmp)
	}
	acc := s.Benchmarks[2]
	if acc.Extra["m/op"] != 2.1 || acc.BPerOp != nil {
		t.Errorf("ReportMetric record: %+v", acc)
	}
	nm := s.Benchmarks[3]
	if nm.Name != "NoMem" || nm.Procs != 8 || nm.BPerOp != nil {
		t.Errorf("procs-suffixed record: %+v", nm)
	}
}

func TestParseSkipsNonResults(t *testing.T) {
	in := "BenchmarkJustAName\nBenchmarkOdd 12 34\nsome test log line\n"
	s, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Benchmarks) != 0 {
		t.Fatalf("non-result lines produced records: %+v", s.Benchmarks)
	}
}

func TestParseRejectsMalformedValue(t *testing.T) {
	in := "BenchmarkBad-8   100   xx ns/op\n"
	if _, err := parse(strings.NewReader(in)); err == nil {
		t.Fatal("malformed value should error")
	}
}
