// benchjson turns `go test -bench` text output into a machine-readable
// JSON artifact, seeding the repo's performance trajectory
// (BENCH_PR3.json and successors). It reads the benchmark output on
// stdin and writes one JSON document:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson -out BENCH_PR3.json
//
// The document records the platform header lines (goos/goarch/pkg/cpu)
// and one record per benchmark result line: the name (with the
// "Benchmark" prefix and -GOMAXPROCS suffix stripped), iteration
// count, ns/op, and — when -benchmem is on — B/op and allocs/op.
// Custom b.ReportMetric units land in the record's "extra" map, so
// accuracy metrics published by the paper-table benchmarks survive
// into the artifact too.
//
// Diff mode compares two artifacts and exits non-zero when a benchmark
// present in both regressed beyond the threshold:
//
//	go run ./cmd/benchjson -diff -max-regress 25 BENCH_PR3.json BENCH_PR4.json
//
// New benchmarks (present only in NEW) are reported and allowed;
// benchmarks present in OLD but missing from NEW are reported and fail
// the diff — a dropped benchmark is how a pinned perf target silently
// stops being enforced. Retiring one for real means regenerating the
// baseline artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	out := flag.String("out", "", "output path (default stdout)")
	diff := flag.Bool("diff", false, "diff mode: compare two artifacts given as OLD NEW arguments")
	maxRegress := flag.Float64("max-regress", 25, "diff mode: max allowed ns/op slowdown in percent")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two arguments: OLD.json NEW.json")
			os.Exit(2)
		}
		regressed, removed, err := runDiff(os.Stdout, flag.Arg(0), flag.Arg(1), *maxRegress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fail := false
		if regressed {
			fmt.Fprintf(os.Stderr, "benchjson: ns/op regression beyond %.0f%% detected\n", *maxRegress)
			fail = true
		}
		if removed > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d baseline benchmark(s) missing from the new run\n", removed)
			fail = true
		}
		if fail {
			os.Exit(1)
		}
		return
	}

	suite, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(suite.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(suite); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
