package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSuite(t *testing.T, dir, name, json string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(json), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffSuites(t *testing.T) {
	oldS := &Suite{Benchmarks: []Record{
		{Name: "Shared/fast", NsPerOp: 100},
		{Name: "Shared/slow", NsPerOp: 1000},
		{Name: "Retired", NsPerOp: 50},
	}}
	newS := &Suite{Benchmarks: []Record{
		{Name: "Shared/fast", NsPerOp: 90},   // 10% faster
		{Name: "Shared/slow", NsPerOp: 1400}, // 40% slower
		{Name: "BrandNew", NsPerOp: 7},       // not in old: reported added
	}}
	rows, added, removed := diffSuites(oldS, newS, 25)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (only shared benchmarks): %+v", len(rows), rows)
	}
	fast, slow := rows[0], rows[1]
	if fast.Name != "Shared/fast" || fast.Regression || fast.DeltaPct > -9 {
		t.Errorf("fast row: %+v", fast)
	}
	if slow.Name != "Shared/slow" || !slow.Regression || slow.DeltaPct < 39 {
		t.Errorf("slow row: %+v", slow)
	}
	if len(added) != 1 || added[0] != "BrandNew" {
		t.Errorf("added = %v, want [BrandNew]", added)
	}
	if len(removed) != 1 || removed[0] != "Retired" {
		t.Errorf("removed = %v, want [Retired]", removed)
	}
}

func TestDiffWithinThresholdPasses(t *testing.T) {
	oldS := &Suite{Benchmarks: []Record{{Name: "B", NsPerOp: 100}}}
	newS := &Suite{Benchmarks: []Record{{Name: "B", NsPerOp: 120}}}
	rows, added, removed := diffSuites(oldS, newS, 25)
	if len(rows) != 1 || rows[0].Regression {
		t.Fatalf("20%% slowdown under a 25%% threshold must pass: %+v", rows)
	}
	if len(added) != 0 || len(removed) != 0 {
		t.Fatalf("identical coverage reported added=%v removed=%v", added, removed)
	}
}

func TestRunDiff(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSuite(t, dir, "old.json",
		`{"benchmarks":[{"name":"A","iterations":1,"ns_per_op":100},{"name":"B","iterations":1,"ns_per_op":100}]}`)
	newPath := writeSuite(t, dir, "new.json",
		`{"benchmarks":[{"name":"A","iterations":1,"ns_per_op":100},{"name":"B","iterations":1,"ns_per_op":200}]}`)

	var sb strings.Builder
	regressed, removed, err := runDiff(&sb, oldPath, newPath, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Error("a 100% slowdown on B must regress")
	}
	if removed != 0 {
		t.Errorf("no benchmarks were removed, got %d", removed)
	}
	out := sb.String()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "+100.0%") {
		t.Errorf("table output missing regression marker:\n%s", out)
	}

	sb.Reset()
	regressed, removed, err = runDiff(&sb, oldPath, oldPath, 25)
	if err != nil {
		t.Fatal(err)
	}
	if regressed || removed != 0 {
		t.Errorf("identical artifacts must not regress:\n%s", sb.String())
	}
}

// TestRunDiffCoverageChanges: a benchmark missing from the new run must
// be reported and counted (CI exits nonzero on it); a brand-new one is
// reported but allowed.
func TestRunDiffCoverageChanges(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSuite(t, dir, "old.json",
		`{"benchmarks":[{"name":"A","iterations":1,"ns_per_op":100},{"name":"Gone","iterations":1,"ns_per_op":100}]}`)
	newPath := writeSuite(t, dir, "new.json",
		`{"benchmarks":[{"name":"A","iterations":1,"ns_per_op":100},{"name":"Fresh","iterations":1,"ns_per_op":5}]}`)

	var sb strings.Builder
	regressed, removed, err := runDiff(&sb, oldPath, newPath, 25)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Error("no shared benchmark regressed")
	}
	if removed != 1 {
		t.Errorf("removed = %d, want 1", removed)
	}
	out := sb.String()
	if !strings.Contains(out, "added:   Fresh") {
		t.Errorf("output missing added line:\n%s", out)
	}
	if !strings.Contains(out, "removed: Gone") || !strings.Contains(out, "REMOVED") {
		t.Errorf("output missing removed line:\n%s", out)
	}
}

func TestRunDiffBadFile(t *testing.T) {
	dir := t.TempDir()
	good := writeSuite(t, dir, "good.json", `{"benchmarks":[]}`)
	bad := writeSuite(t, dir, "bad.json", `{not json`)
	var sb strings.Builder
	if _, _, err := runDiff(&sb, bad, good, 25); err == nil {
		t.Error("malformed old artifact must error")
	}
	if _, _, err := runDiff(&sb, good, filepath.Join(dir, "missing.json"), 25); err == nil {
		t.Error("missing new artifact must error")
	}
}
