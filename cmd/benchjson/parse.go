package main

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Suite is the JSON document: platform headers plus one record per
// benchmark result line.
type Suite struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Record `json:"benchmarks"`
}

// Record is one benchmark result. NsPerOp is always present; BPerOp
// and AllocsPerOp only under -benchmem (nil otherwise, omitted from
// the JSON). Extra holds custom b.ReportMetric units verbatim.
type Record struct {
	Name        string             `json:"name"`
	Procs       int                `json:"procs,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BPerOp      *float64           `json:"b_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// parse consumes `go test -bench` output and collects headers and
// result lines; unrelated lines (PASS, ok, test logs) are skipped.
func parse(r io.Reader) (*Suite, error) {
	s := &Suite{Benchmarks: []Record{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			s.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			s.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			s.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			s.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			rec, ok, err := parseResult(line)
			if err != nil {
				return nil, err
			}
			if ok {
				s.Benchmarks = append(s.Benchmarks, rec)
			}
		}
	}
	return s, sc.Err()
}

// parseResult parses one result line of the form
//
//	BenchmarkName-8   1234   56.7 ns/op   8 B/op   1 allocs/op   0.9 m/op
//
// ok is false for lines that start with "Benchmark" but are not
// results (e.g. the bare name echoed under -v).
func parseResult(line string) (Record, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Record{}, false, nil
	}
	var rec Record
	rec.Name = strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(rec.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(rec.Name[i+1:]); err == nil {
			rec.Name, rec.Procs = rec.Name[:i], procs
		}
	}
	iter, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false, nil
	}
	rec.Iterations = iter

	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Record{}, false, fmt.Errorf("benchmark line %q: bad value %q", line, fields[i])
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			rec.NsPerOp, sawNs = val, true
		case "B/op":
			v := val
			rec.BPerOp = &v
		case "allocs/op":
			v := val
			rec.AllocsPerOp = &v
		default:
			if rec.Extra == nil {
				rec.Extra = make(map[string]float64)
			}
			rec.Extra[unit] = val
		}
	}
	if !sawNs {
		return Record{}, false, nil
	}
	return rec, true, nil
}
