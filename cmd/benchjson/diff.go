// Diff mode: compare two benchjson artifacts and fail on regressions.
// CI runs it against the previous PR's pinned artifact so a ns/op
// regression on a shared benchmark breaks the build instead of slipping
// into the trajectory unnoticed.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// diffRow is one compared benchmark.
type diffRow struct {
	Name       string
	OldNs      float64
	NewNs      float64
	DeltaPct   float64 // (new-old)/old * 100; negative is faster
	Regression bool    // DeltaPct exceeds the threshold
}

// loadSuite reads one benchjson artifact from disk.
func loadSuite(path string) (*Suite, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Suite
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// diffSuites compares ns/op for every benchmark present in both
// suites. maxRegress is the allowed slowdown in percent; a shared
// benchmark slower by more than that is marked a regression. Coverage
// changes are returned alongside the rows, sorted: added holds names
// present only in the new suite (fine — new benchmarks must be free to
// appear), removed holds names present only in the old one. Silently
// dropping a benchmark is how a pinned target stops being enforced, so
// the caller treats removals as failures; retiring one for real means
// regenerating the baseline artifact.
func diffSuites(oldS, newS *Suite, maxRegress float64) (rows []diffRow, added, removed []string) {
	oldByName := make(map[string]Record, len(oldS.Benchmarks))
	for _, r := range oldS.Benchmarks {
		oldByName[r.Name] = r
	}
	newNames := make(map[string]bool, len(newS.Benchmarks))
	for _, nr := range newS.Benchmarks {
		newNames[nr.Name] = true
		or, ok := oldByName[nr.Name]
		if !ok {
			added = append(added, nr.Name)
			continue
		}
		if or.NsPerOp <= 0 {
			continue
		}
		delta := (nr.NsPerOp - or.NsPerOp) / or.NsPerOp * 100
		rows = append(rows, diffRow{
			Name:       nr.Name,
			OldNs:      or.NsPerOp,
			NewNs:      nr.NsPerOp,
			DeltaPct:   delta,
			Regression: delta > maxRegress,
		})
	}
	for name := range oldByName {
		if !newNames[name] {
			removed = append(removed, name)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	sort.Strings(added)
	sort.Strings(removed)
	return rows, added, removed
}

// runDiff loads both artifacts, prints the comparison table and the
// coverage changes, and reports whether any shared benchmark regressed
// beyond the threshold and how many baseline benchmarks the new run
// dropped.
func runDiff(w io.Writer, oldPath, newPath string, maxRegress float64) (regressed bool, removedCount int, err error) {
	oldS, err := loadSuite(oldPath)
	if err != nil {
		return false, 0, err
	}
	newS, err := loadSuite(newPath)
	if err != nil {
		return false, 0, err
	}
	rows, added, removed := diffSuites(oldS, newS, maxRegress)
	if len(rows) == 0 {
		fmt.Fprintf(w, "benchjson: no shared benchmarks between %s and %s\n", oldPath, newPath)
	} else {
		fmt.Fprintf(w, "%-40s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
		for _, r := range rows {
			mark := ""
			if r.Regression {
				mark = "  REGRESSION"
				regressed = true
			}
			fmt.Fprintf(w, "%-40s %14.1f %14.1f %+8.1f%%%s\n", r.Name, r.OldNs, r.NewNs, r.DeltaPct, mark)
		}
	}
	for _, name := range added {
		fmt.Fprintf(w, "added:   %s (not in baseline)\n", name)
	}
	for _, name := range removed {
		fmt.Fprintf(w, "removed: %s (in baseline, missing from new run)  REMOVED\n", name)
	}
	return regressed, len(removed), nil
}
