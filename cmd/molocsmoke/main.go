// Command molocsmoke is the end-to-end smoke test behind `make smoke`:
// it boots a real molocd process on a loopback port, walks one session
// through the full API (create, imu, scan, tick, get), scrapes
// /v1/metricsz to assert the serving counters moved, and finally sends
// SIGTERM to verify the graceful drain path exits cleanly.
//
// Usage:
//
//	molocsmoke [-molocd bin/molocd] [-train 8] [-timeout 120s]
//
// Exit status 0 means every assertion held.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"os/exec"
	"syscall"
	"time"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "molocsmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("molocsmoke: ok")
}

func run() error {
	var (
		molocd  = flag.String("molocd", "bin/molocd", "path to the molocd binary under test")
		train   = flag.Int("train", 8, "training traces for the deployment build (small = fast boot)")
		timeout = flag.Duration("timeout", 120*time.Second, "overall deadline")
	)
	flag.Parse()
	deadline := time.Now().Add(*timeout)

	addr, err := freeAddr()
	if err != nil {
		return err
	}
	base := "http://" + addr

	cmd := exec.Command(*molocd,
		"-addr", addr,
		"-train", fmt.Sprint(*train),
		"-drain", "5s",
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start %s: %w", *molocd, err)
	}
	// The happy path ends with a SIGTERM + Wait; this backstop only runs
	// when an assertion fails mid-flight.
	defer func() {
		if cmd.ProcessState == nil {
			//lint:ignore errdrop best-effort cleanup of an already-failed run
			_ = cmd.Process.Kill()
			//lint:ignore errdrop best-effort cleanup of an already-failed run
			_ = cmd.Wait()
		}
	}()

	// 1. Wait for the deployment build to finish and the server to answer.
	aps, err := waitHealthy(base, deadline)
	if err != nil {
		return err
	}
	fmt.Printf("molocsmoke: healthy at %s (%d APs)\n", base, aps)

	// 2. Create a session; the response must carry the lifecycle contract.
	var created struct {
		SessionID string  `json:"session_id"`
		TTLSec    float64 `json:"ttl_sec"`
	}
	if err := call(http.MethodPost, base+"/v1/sessions",
		map[string]float64{"height_m": 1.71, "weight_kg": 68}, http.StatusCreated, &created); err != nil {
		return fmt.Errorf("create session: %w", err)
	}
	if created.SessionID == "" || created.TTLSec <= 0 {
		return fmt.Errorf("create response missing lifecycle fields: %+v", created)
	}
	sess := base + "/v1/sessions/" + created.SessionID

	// 3. Stream one interval of walking IMU data plus a scan, then tick.
	type sample struct {
		T       float64 `json:"t"`
		Accel   float64 `json:"accel"`
		Compass float64 `json:"compass"`
	}
	var samples []sample
	for i := 0; i < 30; i++ {
		t := float64(i) * 0.1
		samples = append(samples, sample{
			T:       t,
			Accel:   9.8 + 1.5*math.Sin(2*math.Pi*2*t), // ~2 Hz step cadence
			Compass: 90,
		})
	}
	if err := call(http.MethodPost, sess+"/imu",
		map[string]interface{}{"samples": samples}, http.StatusAccepted, nil); err != nil {
		return fmt.Errorf("post imu: %w", err)
	}
	rss := make([]float64, aps)
	for i := range rss {
		rss[i] = -60
	}
	if err := call(http.MethodPost, sess+"/scan",
		map[string]interface{}{"t": 1.0, "rss": rss}, http.StatusAccepted, nil); err != nil {
		return fmt.Errorf("post scan: %w", err)
	}
	var fix struct {
		Loc int `json:"loc"`
	}
	if err := call(http.MethodPost, sess+"/tick",
		map[string]float64{"t": 3.5}, http.StatusOK, &fix); err != nil {
		return fmt.Errorf("tick with a fresh scan must produce a fix: %w", err)
	}
	fmt.Printf("molocsmoke: fix at location %d\n", fix.Loc)
	if err := call(http.MethodGet, sess, nil, http.StatusOK, nil); err != nil {
		return fmt.Errorf("get session: %w", err)
	}

	// 4. The metrics endpoint must have seen all of the above.
	var metrics struct {
		Sessions   int              `json:"sessions"`
		Counters   map[string]int64 `json:"counters"`
		Histograms map[string]struct {
			Count int64 `json:"count"`
		} `json:"histograms"`
	}
	if err := call(http.MethodGet, base+"/v1/metricsz", nil, http.StatusOK, &metrics); err != nil {
		return fmt.Errorf("scrape metricsz: %w", err)
	}
	checks := []struct {
		name string
		got  int64
	}{
		{"counter sessions_created", metrics.Counters["sessions_created"]},
		{"counter requests{route=create,status=201}", metrics.Counters["requests{route=create,status=201}"]},
		{"counter requests{route=tick,status=200}", metrics.Counters["requests{route=tick,status=200}"]},
		{"histogram tick_seconds", metrics.Histograms["tick_seconds"].Count},
		{"histogram candidate_set_size", metrics.Histograms["candidate_set_size"].Count},
		{"histogram latency_seconds{route=tick}", metrics.Histograms["latency_seconds{route=tick}"].Count},
	}
	for _, c := range checks {
		if c.got <= 0 {
			return fmt.Errorf("metricsz: %s is zero after traffic: %+v", c.name, metrics.Counters)
		}
	}
	if metrics.Sessions != 1 {
		return fmt.Errorf("metricsz reports %d sessions, want 1", metrics.Sessions)
	}
	fmt.Println("molocsmoke: metrics populated")

	// 5. Graceful drain: SIGTERM must yield a clean exit.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signal molocd: %w", err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			return fmt.Errorf("molocd did not exit cleanly on SIGTERM: %w", err)
		}
	case <-time.After(10 * time.Second):
		return errors.New("molocd did not exit within 10s of SIGTERM")
	}
	fmt.Println("molocsmoke: drained cleanly on SIGTERM")
	return nil
}

// freeAddr reserves a loopback port by binding, reading the address,
// and releasing it for molocd to claim.
func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	if err := l.Close(); err != nil {
		return "", err
	}
	return addr, nil
}

// waitHealthy polls /v1/healthz until the server answers, returning the
// deployment's AP count from the health payload.
func waitHealthy(base string, deadline time.Time) (int, error) {
	var health struct {
		APs int `json:"aps"`
	}
	for time.Now().Before(deadline) {
		err := call(http.MethodGet, base+"/v1/healthz", nil, http.StatusOK, &health)
		if err == nil {
			return health.APs, nil
		}
		time.Sleep(250 * time.Millisecond)
	}
	return 0, errors.New("server did not become healthy before the deadline")
}

// call issues one JSON request and decodes the response into out (when
// non-nil), enforcing the expected status code.
func call(method, url string, body interface{}, wantStatus int, out interface{}) error {
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		//lint:ignore errdrop closing a fully-read response body
		_ = resp.Body.Close()
	}()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != wantStatus {
		return fmt.Errorf("%s %s: status %d (want %d): %s",
			method, url, resp.StatusCode, wantStatus, buf.String())
	}
	if out != nil {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			return fmt.Errorf("%s %s: decode: %w", method, url, err)
		}
	}
	return nil
}
