// Command molocsmoke is the end-to-end smoke test behind `make smoke`:
// it boots a real molocd process on a loopback port with durability on,
// walks one session through the full API (create, imu, scan, tick,
// get), scrapes /v1/metricsz to assert the serving counters moved, then
// kills the process with SIGKILL and restarts it on the same data
// directory to verify crash recovery end to end — acknowledged
// observations replay from the WAL, the ladder reports "ok", and fixes
// come out motion-matched. A binary-stream leg then drives the wire
// protocol against -stream-addr: observation batches over a persistent
// connection, a second SIGKILL mid-stream, and a reconnect that must
// resume the stream with zero acked-but-lost records after replay. The
// final process gets SIGTERM to verify the graceful drain path.
//
// Every request goes through internal/httpretry, so the smoke tolerates
// — and deliberately exercises — the connection-refused window while
// molocd restarts.
//
// Usage:
//
//	molocsmoke [-molocd bin/molocd] [-train 8] [-timeout 120s]
//
// Exit status 0 means every assertion held.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"os/exec"
	"syscall"
	"time"

	"moloc/internal/httpretry"
	"moloc/internal/motion"
	"moloc/internal/motiondb"
	"moloc/internal/stats"
	"moloc/internal/wire"
)

// retry is the backoff policy behind every request the smoke makes.
var retry = httpretry.New(stats.NewRNG(stats.HashSeed("molocsmoke")))

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "molocsmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("molocsmoke: ok")
}

func run() error {
	var (
		molocd  = flag.String("molocd", "bin/molocd", "path to the molocd binary under test")
		train   = flag.Int("train", 8, "training traces for the deployment build (small = fast boot)")
		timeout = flag.Duration("timeout", 120*time.Second, "overall deadline")
	)
	flag.Parse()
	deadline := time.Now().Add(*timeout)

	addr, err := freeAddr()
	if err != nil {
		return err
	}
	streamAddr, err := freeAddr()
	if err != nil {
		return err
	}
	base := "http://" + addr
	dataDir, err := os.MkdirTemp("", "molocsmoke-*")
	if err != nil {
		return err
	}
	defer func() {
		_ = os.RemoveAll(dataDir)
	}()

	cmd, err := startMolocd(*molocd, addr, streamAddr, *train, dataDir)
	if err != nil {
		return err
	}
	// The happy path ends with a SIGTERM + Wait; this backstop only runs
	// when an assertion fails mid-flight.
	defer func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	}()

	// 1. Wait for the deployment build to finish and the server to answer.
	aps, err := waitHealthy(base, deadline)
	if err != nil {
		return err
	}
	fmt.Printf("molocsmoke: healthy at %s (%d APs)\n", base, aps)

	// 2. Create a session; the response must carry the lifecycle contract.
	var created struct {
		SessionID string  `json:"session_id"`
		TTLSec    float64 `json:"ttl_sec"`
	}
	if err := call(http.MethodPost, base+"/v1/sessions",
		map[string]float64{"height_m": 1.71, "weight_kg": 68}, http.StatusCreated, &created); err != nil {
		return fmt.Errorf("create session: %w", err)
	}
	if created.SessionID == "" || created.TTLSec <= 0 {
		return fmt.Errorf("create response missing lifecycle fields: %+v", created)
	}

	// 3. Stream one interval of walking data; the tick must produce a fix.
	fix, err := driveFix(base, created.SessionID, aps)
	if err != nil {
		return err
	}
	fmt.Printf("molocsmoke: fix at location %d (mode %s)\n", fix.Loc, fix.Mode)
	if fix.Mode != "moloc" {
		return fmt.Errorf("healthy fix mode = %q, want moloc", fix.Mode)
	}
	if err := call(http.MethodGet, base+"/v1/sessions/"+created.SessionID, nil, http.StatusOK, nil); err != nil {
		return fmt.Errorf("get session: %w", err)
	}

	// 4. The metrics endpoint must have seen all of the above.
	metrics, err := scrape(base)
	if err != nil {
		return err
	}
	checks := []struct {
		name string
		got  int64
	}{
		{"counter sessions_created", metrics.Counters["sessions_created"]},
		{"counter requests{route=create,status=201}", metrics.Counters["requests{route=create,status=201}"]},
		{"counter requests{route=tick,status=200}", metrics.Counters["requests{route=tick,status=200}"]},
		{"histogram tick_seconds", metrics.Histograms["tick_seconds"].Count},
		{"histogram candidate_set_size", metrics.Histograms["candidate_set_size"].Count},
		{"histogram latency_seconds{route=tick}", metrics.Histograms["latency_seconds{route=tick}"].Count},
	}
	for _, c := range checks {
		if c.got <= 0 {
			return fmt.Errorf("metricsz: %s is zero after traffic: %+v", c.name, metrics.Counters)
		}
	}
	if metrics.Sessions != 1 {
		return fmt.Errorf("metricsz reports %d sessions, want 1", metrics.Sessions)
	}
	fmt.Println("molocsmoke: metrics populated")

	// 5. Durability: acknowledge an observation batch into the WAL, then
	// kill -9 and restart on the same data directory. The batch must
	// replay, the ladder must report ok, and fixes must still be
	// motion-matched.
	obs := []map[string]interface{}{
		{"from": 1, "to": 2, "rlm": map[string]float64{"dir": 90, "off": 5}},
		{"from": 2, "to": 1, "rlm": map[string]float64{"dir": 270, "off": 5}},
	}
	if err := call(http.MethodPost, base+"/v1/observations",
		map[string]interface{}{"observations": obs}, http.StatusAccepted, nil); err != nil {
		return fmt.Errorf("post observations: %w", err)
	}
	if metrics, err = scrape(base); err != nil {
		return err
	}
	if metrics.Counters["wal_appends"] < 1 {
		return fmt.Errorf("wal_appends = %d after an acknowledged batch", metrics.Counters["wal_appends"])
	}
	if err := cmd.Process.Kill(); err != nil {
		return fmt.Errorf("kill molocd: %w", err)
	}
	//lint:ignore errdrop a SIGKILLed process never exits cleanly; the failure is the point
	_ = cmd.Wait()
	fmt.Println("molocsmoke: killed molocd uncleanly (SIGKILL)")

	cmd, err = startMolocd(*molocd, addr, streamAddr, *train, dataDir)
	if err != nil {
		return err
	}
	if _, err := waitHealthy(base, deadline); err != nil {
		return fmt.Errorf("restart: %w", err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := call(http.MethodGet, base+"/v1/healthz", nil, http.StatusOK, &health); err != nil {
		return err
	}
	if health.Status != "ok" {
		return fmt.Errorf("healthz after crash recovery = %q, want ok", health.Status)
	}
	if metrics, err = scrape(base); err != nil {
		return err
	}
	if metrics.Counters["wal_replayed_observations"] != int64(len(obs)) {
		return fmt.Errorf("wal_replayed_observations = %d after restart, want %d",
			metrics.Counters["wal_replayed_observations"], len(obs))
	}
	if err := call(http.MethodPost, base+"/v1/sessions",
		map[string]float64{"height_m": 1.71, "weight_kg": 68}, http.StatusCreated, &created); err != nil {
		return fmt.Errorf("create session after restart: %w", err)
	}
	fix, err = driveFix(base, created.SessionID, aps)
	if err != nil {
		return fmt.Errorf("after restart: %w", err)
	}
	if fix.Mode != "moloc" {
		return fmt.Errorf("fix mode after recovery = %q, want moloc", fix.Mode)
	}
	fmt.Printf("molocsmoke: recovered after crash (replayed %d observations, fix mode %s)\n",
		len(obs), fix.Mode)

	// 6. Binary stream leg: observation batches over the wire protocol,
	// SIGKILL mid-stream, restart, reconnect with resume — and zero
	// acked-but-lost records after replay.
	cmd, err = streamLeg(cmd, *molocd, addr, streamAddr, *train, dataDir, deadline)
	if err != nil {
		return fmt.Errorf("stream leg: %w", err)
	}

	// 7. Replication leg: a follower molocd replicates the leader's WAL,
	// survives the leader's SIGKILL in follower-stale, promotes, takes
	// ingest, and — after its own kill -9 — replays every observation it
	// ever acknowledged. The leader dies in this leg; the promoted
	// follower is the process the drain step below shuts down.
	folDir, err := os.MkdirTemp("", "molocsmoke-fol-*")
	if err != nil {
		return err
	}
	defer func() {
		_ = os.RemoveAll(folDir)
	}()
	cmd, err = replicationLeg(cmd, *molocd, streamAddr, *train, folDir, deadline)
	if err != nil {
		return fmt.Errorf("replication leg: %w", err)
	}

	// 8. Graceful drain: SIGTERM must yield a clean exit.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signal molocd: %w", err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			return fmt.Errorf("molocd did not exit cleanly on SIGTERM: %w", err)
		}
	case <-time.After(10 * time.Second):
		return errors.New("molocd did not exit within 10s of SIGTERM")
	}
	fmt.Println("molocsmoke: drained cleanly on SIGTERM")
	return nil
}

// startMolocd launches one molocd process with durability on dataDir
// and the binary stream listener on streamAddr.
func startMolocd(bin, addr, streamAddr string, train int, dataDir string) (*exec.Cmd, error) {
	cmd := exec.Command(bin,
		"-addr", addr,
		"-stream-addr", streamAddr,
		"-train", fmt.Sprint(train),
		"-drain", "5s",
		"-data-dir", dataDir,
		"-fsync", "always",
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", bin, err)
	}
	return cmd, nil
}

// streamLeg drives the binary stream protocol end to end against a live
// molocd: acked batches, a SIGKILL mid-stream, and a reconnect that
// must resume. The durable-ack invariant under test: every observation
// the client saw acknowledged before the kill must be in the restarted
// server's WAL replay — acked-but-lost count must be zero. It returns
// the restarted process for the caller's drain step.
func streamLeg(cmd *exec.Cmd, bin, addr, streamAddr string, train int, dataDir string, deadline time.Time) (*exec.Cmd, error) {
	const (
		ackedBatches  = 16 // waited on before the kill: all durably acked
		inflightLimit = 4  // fire-and-forget tail racing the kill
		resumeBatches = 16 // sent after the restart over the resumed stream
		obsPerBatch   = 4
	)
	base := "http://" + addr
	batch := make([]motiondb.Observation, obsPerBatch)
	for i := range batch {
		batch[i] = motiondb.Observation{From: 1, To: 2, RLM: motion.RLM{Dir: 90, Off: 5}}
	}

	// checkpoint_writes before any stream traffic: the replay accounting
	// below only holds while no retrain checkpoint absorbs stream batches
	// out of the WAL mid-leg.
	pre, err := scrape(base)
	if err != nil {
		return cmd, err
	}
	ckptBase := pre.Counters["checkpoint_writes"]

	c, err := wire.DialStream(streamAddr, "molocsmoke", wire.ClientOptions{
		RedialAttempts: 40,
		RedialWait:     250 * time.Millisecond,
	})
	if err != nil {
		return cmd, fmt.Errorf("dial stream %s: %w", streamAddr, err)
	}
	defer func() {
		_ = c.Close()
	}()

	for b := 0; b < ackedBatches; b++ {
		if err := c.SendObservations(batch); err != nil {
			return cmd, fmt.Errorf("send batch %d: %w", b, err)
		}
	}
	if err := c.WaitAcked(); err != nil {
		return cmd, fmt.Errorf("wait acked: %w", err)
	}
	// A fire-and-forget tail keeps frames in flight when the kill lands;
	// whatever the server acked before dying must survive, the rest is
	// resent on resume.
	for b := 0; b < inflightLimit; b++ {
		if err := c.SendObservations(batch); err != nil {
			return cmd, fmt.Errorf("send in-flight batch %d: %w", b, err)
		}
	}
	ackedAtKill := c.Acked()
	if ackedAtKill < ackedBatches {
		return cmd, fmt.Errorf("acked %d batches before kill, want >= %d", ackedAtKill, ackedBatches)
	}
	mid, err := scrape(base)
	if err != nil {
		return cmd, err
	}
	ckptAtKill := mid.Counters["checkpoint_writes"]
	if mid.Counters["stream_conns"] < 1 || mid.Counters["stream_acks"] < 1 {
		return cmd, fmt.Errorf("stream metrics flat before kill: conns=%d acks=%d",
			mid.Counters["stream_conns"], mid.Counters["stream_acks"])
	}
	if err := cmd.Process.Kill(); err != nil {
		return cmd, fmt.Errorf("kill molocd: %w", err)
	}
	//lint:ignore errdrop a SIGKILLed process never exits cleanly; the failure is the point
	_ = cmd.Wait()
	fmt.Printf("molocsmoke: killed molocd mid-stream (%d batches acked, %d in flight)\n",
		ackedAtKill, int(c.Acked())-int(ackedAtKill)+c.Pending())

	cmd, err = startMolocd(bin, addr, streamAddr, train, dataDir)
	if err != nil {
		return cmd, err
	}
	if _, err := waitHealthy(base, deadline); err != nil {
		return cmd, fmt.Errorf("restart: %w", err)
	}

	// The next send redials, resumes the stream, and resends the unacked
	// tail; everything must end up acknowledged.
	for b := 0; b < resumeBatches; b++ {
		if err := c.SendObservations(batch); err != nil {
			return cmd, fmt.Errorf("send after restart: batch %d: %w", b, err)
		}
	}
	if err := c.WaitAcked(); err != nil {
		return cmd, fmt.Errorf("wait acked after restart: %w", err)
	}
	if c.Resumes() < 1 {
		return cmd, fmt.Errorf("client reports %d resumes after the kill, want >= 1", c.Resumes())
	}
	wantAcked := uint64(ackedBatches + inflightLimit + resumeBatches)
	if c.Acked() != wantAcked {
		return cmd, fmt.Errorf("acked %d batches total, want %d", c.Acked(), wantAcked)
	}

	// Zero acked-but-lost: every batch acked before the kill replayed
	// from the WAL into the restarted server (the scrape runs after
	// recovery finished, because waitHealthy gates on it).
	post, err := scrape(base)
	if err != nil {
		return cmd, err
	}
	replayed := post.Counters["wal_replayed_observations"]
	ackedObs := int64(ackedAtKill) * obsPerBatch
	if ckptAtKill == ckptBase && replayed < ackedObs {
		return cmd, fmt.Errorf("acked-but-lost records: %d observations acked before kill, only %d replayed",
			ackedObs, replayed)
	}
	maxObs := int64(ackedBatches+inflightLimit) * obsPerBatch
	if replayed > maxObs {
		return cmd, fmt.Errorf("replayed %d observations, more than the %d ever appended before the kill",
			replayed, maxObs)
	}
	fmt.Printf("molocsmoke: stream resumed after crash (%d/%d acked observations replayed, 0 lost)\n",
		replayed, ackedObs)
	return cmd, nil
}

// startFollower launches molocd as a read replica of the leader's
// stream listener. Retraining is pushed out past the leg's lifetime so
// no checkpoint absorbs replicated records out of the WAL — the replay
// accounting at the end of the leg counts every one of them.
func startFollower(bin, addr, streamAddr string, train int, dataDir, leaderStream string) (*exec.Cmd, error) {
	cmd := exec.Command(bin,
		"-addr", addr,
		"-stream-addr", streamAddr,
		"-train", fmt.Sprint(train),
		"-drain", "5s",
		"-data-dir", dataDir,
		"-fsync", "always",
		"-retrain", "1h",
		"-follow", leaderStream,
		"-repl-lag-max", "2s",
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start follower %s: %w", bin, err)
	}
	return cmd, nil
}

// smokeHealth is the slice of /v1/healthz the replication leg asserts
// on.
type smokeHealth struct {
	Status    string  `json:"status"`
	Role      string  `json:"role"`
	Connected bool    `json:"replication_connected"`
	LagSeq    float64 `json:"replication_lag_seq"`
}

// waitHealth polls base's healthz until cond holds on it.
func waitHealth(base, what string, deadline time.Time, cond func(h smokeHealth) bool) error {
	for time.Now().Before(deadline) {
		var h smokeHealth
		if err := call(http.MethodGet, base+"/v1/healthz", nil, http.StatusOK, &h); err == nil && cond(h) {
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("deadline waiting for %s", what)
}

// replicationLeg is the three-process failover scenario: leader (cmd) +
// a follower bootstrapped over replication + the promoted follower
// restarted after its own crash. It kills the leader and returns the
// promoted follower's process for the caller's drain step.
//
// The WAL accounting that makes "no acked-observation loss" checkable
// from outside: the follower's repl_applied_observations counter must
// track the leader's acked stream batches exactly (equality, so neither
// loss nor double-apply), and after the promoted follower's kill -9 its
// wal_replayed_observations must equal everything it applied over
// replication plus everything it ingested as the new leader.
func replicationLeg(cmd *exec.Cmd, bin, leaderStream string, train int, folDir string, deadline time.Time) (*exec.Cmd, error) {
	const (
		replBatches = 8
		obsPerBatch = 4
	)
	folAddr, err := freeAddr()
	if err != nil {
		return cmd, err
	}
	folStream, err := freeAddr()
	if err != nil {
		return cmd, err
	}
	folBase := "http://" + folAddr

	fol, err := startFollower(bin, folAddr, folStream, train, folDir, leaderStream)
	if err != nil {
		return cmd, err
	}
	// Backstop for the error paths only: the success path hands the live
	// process back to the caller's drain step.
	handedOff := false
	defer func() {
		if !handedOff && fol.ProcessState == nil {
			_ = fol.Process.Kill()
			_ = fol.Wait()
		}
	}()
	aps, err := waitHealthy(folBase, deadline)
	if err != nil {
		return cmd, fmt.Errorf("follower boot: %w", err)
	}

	// A read replica refuses writes with 409, pointing at the leader.
	if err := call(http.MethodPost, folBase+"/v1/observations",
		map[string]interface{}{"observations": []map[string]interface{}{
			{"from": 1, "to": 2, "rlm": map[string]float64{"dir": 90, "off": 5}},
		}}, http.StatusConflict, nil); err != nil {
		return cmd, fmt.Errorf("follower ingest must 409: %w", err)
	}

	// Catch up on the leader's existing history, then baseline the
	// applied-observation counter.
	if err := waitHealth(folBase, "follower catch-up", deadline, func(h smokeHealth) bool {
		return h.Role == "follower" && h.Connected && h.LagSeq == 0
	}); err != nil {
		return cmd, err
	}
	m, err := scrape(folBase)
	if err != nil {
		return cmd, err
	}
	applied0 := m.Counters["repl_applied_observations"]
	fmt.Printf("molocsmoke: follower caught up (%d observations replicated)\n", applied0)

	// Stream fresh batches to the leader; the follower must apply every
	// acked observation exactly once.
	batch := make([]motiondb.Observation, obsPerBatch)
	for i := range batch {
		batch[i] = motiondb.Observation{From: 1, To: 2, RLM: motion.RLM{Dir: 90, Off: 5}}
	}
	c, err := wire.DialStream(leaderStream, "molocsmoke-repl", wire.ClientOptions{})
	if err != nil {
		return cmd, fmt.Errorf("dial leader stream: %w", err)
	}
	for b := 0; b < replBatches; b++ {
		if err := c.SendObservations(batch); err != nil {
			//lint:ignore errdrop the send error is the failure being reported
			_ = c.Close()
			return cmd, fmt.Errorf("send repl batch %d: %w", b, err)
		}
	}
	if err := c.WaitAcked(); err != nil {
		//lint:ignore errdrop the ack error is the failure being reported
		_ = c.Close()
		return cmd, fmt.Errorf("wait acked on leader: %w", err)
	}
	if err := c.Close(); err != nil {
		return cmd, err
	}
	wantApplied := applied0 + replBatches*obsPerBatch
	for {
		if m, err = scrape(folBase); err != nil {
			return cmd, err
		}
		got := m.Counters["repl_applied_observations"]
		if got == wantApplied {
			break
		}
		if got > wantApplied {
			return cmd, fmt.Errorf("follower applied %d observations, leader only acked %d: double-apply",
				got, wantApplied)
		}
		if !time.Now().Before(deadline) {
			return cmd, fmt.Errorf("follower applied %d observations before deadline, want %d", got, wantApplied)
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Printf("molocsmoke: follower applied all %d acked observations exactly once\n", wantApplied)

	// Kill the leader. The follower must degrade to follower-stale —
	// and keep serving fixes.
	if err := cmd.Process.Kill(); err != nil {
		return cmd, fmt.Errorf("kill leader: %w", err)
	}
	//lint:ignore errdrop a SIGKILLed process never exits cleanly; the failure is the point
	_ = cmd.Wait()
	fmt.Println("molocsmoke: killed the leader (SIGKILL)")
	if err := waitHealth(folBase, "follower-stale entry", deadline, func(h smokeHealth) bool {
		return h.Status == "follower-stale" && h.Role == "follower"
	}); err != nil {
		return fol, err
	}
	var created struct {
		SessionID string `json:"session_id"`
	}
	if err := call(http.MethodPost, folBase+"/v1/sessions",
		map[string]float64{"height_m": 1.71, "weight_kg": 68}, http.StatusCreated, &created); err != nil {
		return fol, fmt.Errorf("create session on stale follower: %w", err)
	}
	if _, err := driveFix(folBase, created.SessionID, aps); err != nil {
		return fol, fmt.Errorf("stale follower must still serve fixes: %w", err)
	}
	fmt.Println("molocsmoke: leaderless follower is stale but serving")

	// Promote. Ingest opens, the ladder clears, healthz flips role.
	var promoted struct {
		Role     string `json:"role"`
		Promoted bool   `json:"promoted"`
	}
	if err := call(http.MethodPost, folBase+"/v1/admin/promote", nil, http.StatusOK, &promoted); err != nil {
		return fol, fmt.Errorf("promote: %w", err)
	}
	if promoted.Role != "leader" || !promoted.Promoted {
		return fol, fmt.Errorf("promote answered %+v, want promoted leader", promoted)
	}
	if err := waitHealth(folBase, "promoted ladder clear", deadline, func(h smokeHealth) bool {
		return h.Status == "ok" && h.Role == "leader"
	}); err != nil {
		return fol, err
	}
	ingest := []map[string]interface{}{
		{"from": 1, "to": 2, "rlm": map[string]float64{"dir": 90, "off": 5}},
		{"from": 2, "to": 1, "rlm": map[string]float64{"dir": 270, "off": 5}},
	}
	if err := call(http.MethodPost, folBase+"/v1/observations",
		map[string]interface{}{"observations": ingest}, http.StatusAccepted, nil); err != nil {
		return fol, fmt.Errorf("ingest on promoted follower: %w", err)
	}
	fmt.Println("molocsmoke: promoted follower accepts ingest")

	// kill -9 the promoted follower and restart it standalone: the WAL
	// replay must cover every observation it applied over replication
	// plus the batch it ingested as leader — zero acked-observation loss
	// across the whole failover.
	if err := fol.Process.Kill(); err != nil {
		return fol, fmt.Errorf("kill promoted follower: %w", err)
	}
	//lint:ignore errdrop a SIGKILLed process never exits cleanly; the failure is the point
	_ = fol.Wait()
	fol, err = startMolocd(bin, folAddr, folStream, train, folDir)
	if err != nil {
		return fol, err
	}
	if _, err := waitHealthy(folBase, deadline); err != nil {
		return fol, fmt.Errorf("promoted follower restart: %w", err)
	}
	if m, err = scrape(folBase); err != nil {
		return fol, err
	}
	wantReplay := wantApplied + int64(len(ingest))
	if got := m.Counters["wal_replayed_observations"]; got != wantReplay {
		return fol, fmt.Errorf("promoted follower replayed %d observations, want %d (replicated %d + ingested %d)",
			got, wantReplay, wantApplied, len(ingest))
	}
	if err := call(http.MethodPost, folBase+"/v1/sessions",
		map[string]float64{"height_m": 1.71, "weight_kg": 68}, http.StatusCreated, &created); err != nil {
		return fol, fmt.Errorf("create session after failover: %w", err)
	}
	fix, err := driveFix(folBase, created.SessionID, aps)
	if err != nil {
		return fol, fmt.Errorf("after failover: %w", err)
	}
	if fix.Mode != "moloc" {
		return fol, fmt.Errorf("fix mode after failover = %q, want moloc", fix.Mode)
	}
	fmt.Printf("molocsmoke: failover complete (replayed %d observations, 0 lost)\n", wantReplay)
	handedOff = true
	return fol, nil
}

// smokeFix is the slice of the fix payload the smoke asserts on.
type smokeFix struct {
	Loc  int    `json:"loc"`
	Mode string `json:"mode"`
}

// driveFix streams one interval of synthetic walking (2 Hz cadence IMU
// plus one flat scan) into the session and ticks for a fix.
func driveFix(base, sessionID string, aps int) (smokeFix, error) {
	sess := base + "/v1/sessions/" + sessionID
	type sample struct {
		T       float64 `json:"t"`
		Accel   float64 `json:"accel"`
		Compass float64 `json:"compass"`
	}
	var samples []sample
	for i := 0; i < 30; i++ {
		t := float64(i) * 0.1
		samples = append(samples, sample{
			T:       t,
			Accel:   9.8 + 1.5*math.Sin(2*math.Pi*2*t), // ~2 Hz step cadence
			Compass: 90,
		})
	}
	var fix smokeFix
	if err := call(http.MethodPost, sess+"/imu",
		map[string]interface{}{"samples": samples}, http.StatusAccepted, nil); err != nil {
		return fix, fmt.Errorf("post imu: %w", err)
	}
	rss := make([]float64, aps)
	for i := range rss {
		rss[i] = -60
	}
	if err := call(http.MethodPost, sess+"/scan",
		map[string]interface{}{"t": 1.0, "rss": rss}, http.StatusAccepted, nil); err != nil {
		return fix, fmt.Errorf("post scan: %w", err)
	}
	if err := call(http.MethodPost, sess+"/tick",
		map[string]float64{"t": 3.5}, http.StatusOK, &fix); err != nil {
		return fix, fmt.Errorf("tick with a fresh scan must produce a fix: %w", err)
	}
	return fix, nil
}

// smokeMetrics is the slice of /v1/metricsz the smoke asserts on.
type smokeMetrics struct {
	Sessions   int              `json:"sessions"`
	Counters   map[string]int64 `json:"counters"`
	Histograms map[string]struct {
		Count int64 `json:"count"`
	} `json:"histograms"`
}

func scrape(base string) (smokeMetrics, error) {
	var m smokeMetrics
	if err := call(http.MethodGet, base+"/v1/metricsz", nil, http.StatusOK, &m); err != nil {
		return m, fmt.Errorf("scrape metricsz: %w", err)
	}
	return m, nil
}

// freeAddr reserves a loopback port by binding, reading the address,
// and releasing it for molocd to claim.
func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	if err := l.Close(); err != nil {
		return "", err
	}
	return addr, nil
}

// waitHealthy polls /v1/healthz until the server answers, returning the
// deployment's AP count from the health payload. The retry policy
// inside call already rides out the connection-refused window while
// molocd builds its deployment; the outer loop guards the overall
// deadline.
func waitHealthy(base string, deadline time.Time) (int, error) {
	var health struct {
		APs int `json:"aps"`
	}
	for time.Now().Before(deadline) {
		err := call(http.MethodGet, base+"/v1/healthz", nil, http.StatusOK, &health)
		if err == nil {
			return health.APs, nil
		}
		time.Sleep(250 * time.Millisecond)
	}
	return 0, errors.New("server did not become healthy before the deadline")
}

// call issues one JSON request through the retry policy and decodes the
// response into out (when non-nil), enforcing the expected status code.
func call(method, url string, body interface{}, wantStatus int, out interface{}) error {
	var data []byte
	if body != nil {
		var err error
		if data, err = json.Marshal(body); err != nil {
			return err
		}
	}
	resp, err := retry.Do(method, url, "application/json", data)
	if err != nil {
		return err
	}
	defer func() {
		_ = resp.Body.Close()
	}()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != wantStatus {
		return fmt.Errorf("%s %s: status %d (want %d): %s",
			method, url, resp.StatusCode, wantStatus, buf.String())
	}
	if out != nil {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			return fmt.Errorf("%s %s: decode: %w", method, url, err)
		}
	}
	return nil
}
