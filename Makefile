# Convenience targets for the MoLoc reproduction. Everything is plain
# `go` underneath; the Makefile just names the common invocations.

GO ?= go

.PHONY: all build vet lint test race cover bench bench-json bench-diff experiments examples smoke chaos clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# moloclint enforces the repo's numeric + concurrency invariants
# (DESIGN.md §8); the -cache file makes an unchanged tree replay its
# findings without re-type-checking. The extra go vet pass runs the
# unsafeptr and copylocks analyzers by name: naming analyzers disables
# the rest, so this is an explicit, targeted gate on unsafe.Pointer
# conversions and by-value lock copies on top of the full `make vet`.
lint:
	$(GO) vet -unsafeptr -copylocks ./...
	$(GO) run ./cmd/moloclint -cache .moloclint-cache.json ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# End-to-end smoke: boot a real molocd, drive one session through the
# API, assert /v1/metricsz counters moved, and verify SIGTERM drains.
smoke:
	$(GO) build -o bin/molocd ./cmd/molocd
	$(GO) run ./cmd/molocsmoke -molocd bin/molocd

# Chaos: the fault-injection and crash-recovery suites (torn WAL tails,
# checkpoint corruption, injected EIO, kill -9 recovery, the degradation
# ladder, and replication failover: follower kill -9 resume, leader kill
# to follower-stale and back, promote with no acked-observation loss)
# under the race detector, repeated, then the end-to-end smoke — which
# itself SIGKILLs and restarts molocd on one data directory and runs a
# three-process leader/follower/promote failover leg.
chaos:
	$(GO) test -race -count=3 ./internal/fault/ ./internal/wal/ ./internal/checkpoint/ ./internal/replica/
	$(GO) test -race -count=3 -run 'TestCrashRecovery|TestTornTail|TestCleanShutdown|TestCorruptCheckpoint|TestWAL|TestClosePrompt|TestInstrument|TestRunSharded|TestFingerprintOnly|TestRepl' \
		./internal/server/ ./internal/tracker/
	$(MAKE) smoke

cover:
	$(GO) test -cover ./...

# Regenerate every paper table/figure plus ablations (EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/experiments

# One benchmark per table/figure plus micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable perf artifact: run the hot-path benchmarks and emit
# BENCH_PR10.json via cmd/benchjson, one data point in the repo's perf
# trajectory. BENCHTIME trades precision for CI time.
BENCHTIME ?= 1s
BENCH_JSON ?= BENCH_PR10.json
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkFingerprintKNN|BenchmarkMotionMatchProb|BenchmarkMoLocLocalize|BenchmarkScalability|BenchmarkMotionTrain|BenchmarkRecompileEdges|BenchmarkIngestUnderLoad|BenchmarkIngestStream|BenchmarkWALGroupCommit|BenchmarkSessionShards|BenchmarkTickWheel|BenchmarkReplApply' \
		-benchmem -benchtime $(BENCHTIME) -count 1 . > bench.out
	$(GO) run ./cmd/benchjson -out $(BENCH_JSON) < bench.out
	rm -f bench.out

# Perf gate: regenerate the artifact and compare ns/op against the
# previous PR's pinned numbers; benchmarks shared by both suites must
# not regress beyond 25%, and every baseline benchmark must still be
# present (benchjson -diff fails on removals).
OLD ?= BENCH_PR9.json
bench-diff: bench-json
	$(GO) run ./cmd/benchjson -diff -max-regress 25 $(OLD) $(BENCH_JSON)

# Compile-check and run every example once.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/twins
	$(GO) run ./examples/crowdsourcing
	$(GO) run ./examples/streaming
	$(GO) run ./examples/zeroeffort
	$(GO) run ./examples/navigation
	$(GO) run ./examples/mall

clean:
	$(GO) clean ./...
	rm -f .moloclint-cache.json
