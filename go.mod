module moloc

go 1.22
