package moloc_test

import (
	"fmt"

	"moloc"
)

// Example shows the five-step pipeline: build the world, deploy an AP
// subset, construct localizers, evaluate, and summarize. (Building the
// full paper-scale system takes a few seconds, so the example prints
// nothing verifiable and is compile-checked only.)
func Example() {
	sys, err := moloc.Build(moloc.NewConfig())
	if err != nil {
		panic(err)
	}
	dep, err := sys.Deploy(sys.AllAPs())
	if err != nil {
		panic(err)
	}
	ml, err := dep.NewMoLoc()
	if err != nil {
		panic(err)
	}
	summary := moloc.Summarize(dep.Evaluate(ml))
	fmt.Printf("MoLoc: %.0f%% accuracy, %.2f m mean error\n",
		summary.Accuracy*100, summary.MeanErr)
}

// ExampleConfig shows how experiments customize the pipeline: a
// different floor plan, trace volume, and candidate count.
func ExampleConfig() {
	cfg := moloc.NewConfig()
	cfg.Plan = moloc.Mall()
	cfg.AdjDist = moloc.MallAdjDist
	cfg.NumTrainTraces = 200
	cfg.MoLoc.K = 5

	sys, err := moloc.Build(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println(sys.Plan.Name, sys.Plan.NumLocs())
}

// ExampleLargeErrorLocs shows the Fig. 8 analysis: find the locations
// where the baseline suffers from fingerprint twins and measure both
// methods there.
func ExampleLargeErrorLocs() {
	sys, err := moloc.Build(moloc.NewConfig())
	if err != nil {
		panic(err)
	}
	dep, err := sys.Deploy(sys.AllAPs())
	if err != nil {
		panic(err)
	}
	wifi := dep.Evaluate(dep.NewWiFi())
	twins := moloc.LargeErrorLocs(wifi, 6, 0.5)
	at := moloc.FilterByTrueLoc(wifi, twins)
	fmt.Printf("twin victims %v: WiFi mean error %.1f m\n", twins, at.MeanErr)
}
