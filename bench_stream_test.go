// Streaming-ingest benchmarks (PR 8): the binary wire path against the
// JSON handler path it bypasses (BenchmarkIngestUnderLoad), and the WAL
// group committer's fsync amortization under concurrent streams. Pinned
// in BENCH_PR8.json; `make bench-diff` gates them against the previous
// PR's artifact.
package moloc_test

import (
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"moloc/internal/core"
	"moloc/internal/fault"
	"moloc/internal/fingerprint"
	"moloc/internal/floorplan"
	"moloc/internal/geom"
	"moloc/internal/motion"
	"moloc/internal/motiondb"
	"moloc/internal/server"
	"moloc/internal/wal"
	"moloc/internal/wire"
)

// streamBenchSys builds the ingest benchmark world once: the same
// 50-trace deployment BenchmarkIngestUnderLoad serves, so the two
// benchmarks measure the same server over different wire formats.
var (
	streamSysOnce sync.Once
	streamSysVal  *core.System
	streamSrcVal  fingerprint.CandidateSource
	streamSysErr  error
)

func streamBenchSys(b *testing.B) (*core.System, fingerprint.CandidateSource) {
	b.Helper()
	streamSysOnce.Do(func() {
		cfg := core.NewConfig()
		cfg.NumTrainTraces = 50
		cfg.NumTestTraces = 2
		sys, err := core.Build(cfg)
		if err != nil {
			streamSysErr = err
			return
		}
		fdb, err := sys.Survey.BuildDB(fingerprint.Euclidean{}, sys.Model.NumAPs())
		if err != nil {
			streamSysErr = err
			return
		}
		streamSysVal, streamSrcVal = sys, fdb
	})
	if streamSysErr != nil {
		b.Fatalf("building stream bench fixture: %v", streamSysErr)
	}
	return streamSysVal, streamSrcVal
}

// streamBenchBatch synthesizes the 8-observation batch the ingest
// benchmarks push: jittered ground truth for the DB's first trained
// pair, the shape BenchmarkIngestUnderLoad posts as JSON.
func streamBenchBatch(b *testing.B, sys *core.System) []motiondb.Observation {
	b.Helper()
	pairs := sys.MDB.Pairs()
	if len(pairs) == 0 {
		b.Fatal("motion database has no trained pairs")
	}
	p := pairs[0]
	gtDir, gtOff := floorplan.GroundTruthRLM(sys.Plan, p[0], p[1])
	obs := make([]motiondb.Observation, 8)
	for n := range obs {
		obs[n] = motiondb.Observation{
			From: p[0], To: p[1],
			RLM: motion.RLM{
				Dir: geom.NormalizeDeg(gtDir + float64(n%5) - 2),
				Off: gtOff + 0.1*float64(n%3),
			},
		}
	}
	return obs
}

// benchIngestStream measures one pipelined observation stream end to
// end: client encode, frame transport, server decode + validate + WAL
// append, group-commit ack. ns/op is the amortized per-batch cost — the
// number the tentpole's "10x vs IngestUnderLoad" target is about.
// Periodic retrains fold the queue into the motion DB off the clock so
// the measured loop is the steady-state ingest path alone.
func benchIngestStream(b *testing.B, opts server.Options) {
	sys, src := streamBenchSys(b)
	opts.ObsQueueCap = 1 << 22
	srv, err := server.NewWithOptions(sys.Plan, src, sys.Model.NumAPs(), sys.MDB, sys.Config.Motion, opts)
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ServeStreams(ln) }()
	c, err := wire.DialStream(ln.Addr().String(), "bench", wire.ClientOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		_ = c.Close()
		srv.Close()
		if err := <-errc; err != nil {
			b.Fatal(err)
		}
	}()

	batch := streamBenchBatch(b, sys)
	for i := 0; i < 64; i++ { // warm the scratch pools and the credit window
		if err := c.SendObservations(batch); err != nil {
			b.Fatal(err)
		}
	}
	if err := c.WaitAcked(); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.SendObservations(batch); err != nil {
			b.Fatal(err)
		}
		if i%4096 == 4095 {
			b.StopTimer()
			if err := c.WaitAcked(); err != nil {
				b.Fatal(err)
			}
			if _, err := srv.RetrainNow(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
	if err := c.WaitAcked(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
}

// BenchmarkIngestStream is the binary streaming twin of
// BenchmarkIngestUnderLoad: mem is the in-memory server,
// fsync_always adds the durable WAL with group commit — the production
// configuration whose per-batch fsync the committer amortizes away.
func BenchmarkIngestStream(b *testing.B) {
	b.Run("mem", func(b *testing.B) {
		benchIngestStream(b, server.Options{})
	})
	b.Run("fsync_always", func(b *testing.B) {
		benchIngestStream(b, server.Options{
			DataDir:     b.TempDir(),
			FsyncPolicy: wal.SyncAlways,
		})
	})
}

// slowSyncFS holds every fsync for a disk-realistic latency. The CI
// tmpfs syncs in microseconds, which starves the group of time to form
// and makes the measured amortization an artifact of the filesystem
// rather than the committer; pinning the latency makes batches/fsync
// reflect the committer's behavior on the hardware the server actually
// runs on.
type slowSyncFS struct{ fault.FS }

func (s slowSyncFS) OpenFile(name string, flag int, perm os.FileMode) (fault.File, error) {
	f, err := s.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return slowSyncFile{File: f}, nil
}

type slowSyncFile struct{ fault.File }

func (f slowSyncFile) Sync() error {
	time.Sleep(500 * time.Microsecond)
	return f.File.Sync()
}

// BenchmarkWALGroupCommit measures the committer's amortization floor:
// 32 concurrent appenders each looping AppendNoSync + WaitDurable over
// a SyncAlways log with disk-realistic fsync latency. batches/fsync is
// the factor the streaming path exists for; the acceptance floor is
// >= 5 at this concurrency.
func BenchmarkWALGroupCommit(b *testing.B) {
	const streams = 32
	log, err := wal.Open(b.TempDir(),
		wal.Options{Policy: wal.SyncAlways, FS: slowSyncFS{FS: fault.Disk{}}},
		func(seq uint64, payload []byte) error { return nil })
	if err != nil {
		b.Fatal(err)
	}
	g := wal.NewGroupCommitter(log)
	defer func() {
		g.Close()
		if err := log.Close(); err != nil {
			b.Fatal(err)
		}
	}()
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i)
	}

	errs := make(chan error, streams)
	var wg sync.WaitGroup
	b.ResetTimer()
	for w := 0; w < streams; w++ {
		n := b.N / streams
		if w < b.N%streams {
			n++
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				seq, err := log.AppendNoSync(payload)
				if err != nil {
					errs <- err
					return
				}
				if err := g.WaitDurable(seq); err != nil {
					errs <- err
					return
				}
			}
		}(n)
	}
	wg.Wait()
	b.StopTimer()
	select {
	case err := <-errs:
		b.Fatal(err)
	default:
	}
	st := g.Stats()
	if st.Syncs > 0 {
		ratio := float64(st.Batches) / float64(st.Syncs)
		b.ReportMetric(ratio, "batches/fsync")
		// Only enforce the floor once there is enough traffic for the
		// committer to settle into steady state.
		if b.N >= 10_000 && ratio < 5 {
			b.Fatalf("group commit amortized %.1f batches/fsync at %d streams, want >= 5", ratio, streams)
		}
	}
}
