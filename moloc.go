// Package moloc is a library-scale reproduction of "MoLoc: On
// Distinguishing Fingerprint Twins" (Sun et al., IEEE ICDCS 2013), a
// motion-assisted indoor localization scheme that resolves fingerprint
// ambiguity — distinct locations with near-identical WiFi RSS
// fingerprints — by fusing phone-sensor motion measurements with
// fingerprint matching.
//
// The package is a facade over the internal subsystems:
//
//   - floor-plan modelling and walk graphs (internal/floorplan)
//   - indoor RF propagation simulation (internal/rf)
//   - fingerprint databases and k-NN candidates (internal/fingerprint)
//   - IMU simulation and motion processing (internal/sensors,
//     internal/motion)
//   - the crowdsourced motion database (internal/motiondb,
//     internal/crowd)
//   - the MoLoc localizer and baselines (internal/localizer)
//   - trace-driven evaluation (internal/trace, internal/eval)
//
// The five-line quickstart: build a System from a Config, Deploy an AP
// subset, construct localizers, and Evaluate them on the held-out test
// traces.
//
//	sys, err := moloc.Build(moloc.NewConfig())
//	dep, err := sys.Deploy(sys.AllAPs())
//	ml, err := dep.NewMoLoc()
//	results := dep.Evaluate(ml)
//	fmt.Println(moloc.Summarize(results).Accuracy)
package moloc

import (
	"moloc/internal/core"
	"moloc/internal/eval"
	"moloc/internal/floorplan"
	"moloc/internal/localizer"
	"moloc/internal/trace"
)

// Config assembles every tunable of the pipeline; see core.Config.
type Config = core.Config

// System owns the environment, survey, motion database, and traces.
type System = core.System

// Deployment specializes a System to an AP subset.
type Deployment = core.Deployment

// Plan is a 2-D indoor environment.
type Plan = floorplan.Plan

// Localizer estimates a reference location per observation.
type Localizer = localizer.Localizer

// Summary aggregates localization results: accuracy, mean/max error,
// and the error CDF.
type Summary = eval.Summary

// TraceResult is the localization record of one test trace.
type TraceResult = eval.TraceResult

// Convergence holds the Table I statistics: erroneous localizations
// before the first accurate fix and the quality of estimates after it.
type Convergence = eval.Convergence

// UserProfile describes one simulated walker.
type UserProfile = trace.UserProfile

// NewConfig returns the paper's experiment configuration on the office
// hall of Fig. 5.
func NewConfig() Config { return core.NewConfig() }

// Build runs the shared pipeline stages: environment, RF model, site
// survey, crowdsourced motion-database training, and trace generation.
func Build(cfg Config) (*System, error) { return core.Build(cfg) }

// Summarize computes accuracy and error statistics for a result set.
func Summarize(results []TraceResult) Summary { return eval.Summarize(results) }

// ConvergenceStats computes the Table I convergence statistics.
func ConvergenceStats(results []TraceResult) Convergence {
	return eval.ConvergenceStats(results)
}

// LargeErrorLocs identifies locations where a baseline's errors exceed
// threshold meters in at least minFrac of its attempts — the paper's
// fingerprint-twin victims (Sec. VI-B3).
func LargeErrorLocs(results []TraceResult, threshold, minFrac float64) []int {
	return eval.LargeErrorLocs(results, threshold, minFrac)
}

// FilterByTrueLoc summarizes only the attempts whose ground truth is in
// locs (the Fig. 8 view).
func FilterByTrueLoc(results []TraceResult, locs []int) Summary {
	return eval.FilterByTrueLoc(results, locs)
}

// OfficeHall returns the paper's experimental environment (Fig. 5).
func OfficeHall() *Plan { return floorplan.OfficeHall() }

// Mall returns a larger two-corridor shopping-mall plan.
func Mall() *Plan { return floorplan.Mall() }

// Museum returns a four-room museum plan with doorways.
func Museum() *Plan { return floorplan.Museum() }

// Adjacency thresholds for the built-in plans, for Config.AdjDist.
const (
	OfficeHallAdjDist = floorplan.OfficeHallAdjDist
	MallAdjDist       = floorplan.MallAdjDist
	MuseumAdjDist     = floorplan.MuseumAdjDist
)

// DefaultUsers returns four walkers with diverse height and speed,
// standing in for the paper's volunteers.
func DefaultUsers() []UserProfile { return trace.DefaultUsers() }
