// City-scale serving benchmarks (PR 9): the striped session registry
// under concurrent lookups (BenchmarkSessionShards) and the
// server-paced tick wheel's batch throughput (BenchmarkTickWheel).
// Pinned in BENCH_PR9.json; `make bench-diff` gates them against the
// previous PR's artifact.
package moloc_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"moloc/internal/server"
)

// benchClock is a hand-advanced clock for driving the tick wheel
// deterministically from a benchmark loop.
type benchClock struct {
	mu  sync.Mutex
	now time.Time
}

func newBenchClock() *benchClock {
	return &benchClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *benchClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *benchClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	return c.now
}

// pacedBenchServer builds a server over the shared stream fixture with
// n sessions created through the API (paced when paced is set), each
// fed one scan so its tracker has an interval to close. Returns the
// server, its handler, and the session ids.
func pacedBenchServer(b *testing.B, o server.Options, n int, paced bool) (*server.Server, http.Handler, []string) {
	b.Helper()
	sys, src := streamBenchSys(b)
	o.MaxSessions = n + 1
	srv, err := server.NewWithOptions(sys.Plan, src, sys.Model.NumAPs(), sys.MDB, sys.Config.Motion, o)
	if err != nil {
		b.Fatal(err)
	}
	handler := srv.Handler()

	var rssB strings.Builder
	rssB.WriteString("[")
	for i := 0; i < sys.Model.NumAPs(); i++ {
		if i > 0 {
			rssB.WriteString(",")
		}
		rssB.WriteString("-60")
	}
	rssB.WriteString("]")
	rssJSON := rssB.String()

	createBody := `{"height_m":1.7,"weight_kg":65}`
	if paced {
		createBody = `{"height_m":1.7,"weight_kg":65,"paced":true}`
	}
	ids := make([]string, n)
	for i := range ids {
		req := httptest.NewRequest(http.MethodPost, "/v1/sessions", strings.NewReader(createBody))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusCreated {
			b.Fatalf("create: %d %s", rec.Code, rec.Body.String())
		}
		var cr struct {
			SessionID string `json:"session_id"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &cr); err != nil {
			b.Fatal(err)
		}
		ids[i] = cr.SessionID
		req = httptest.NewRequest(http.MethodPost, "/v1/sessions/"+ids[i]+"/scan",
			strings.NewReader(`{"t":0.5,"rss":`+rssJSON+`}`))
		rec = httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusAccepted {
			b.Fatalf("scan: %d %s", rec.Code, rec.Body.String())
		}
	}
	return srv, handler, ids
}

// BenchmarkSessionShards measures concurrent session lookups against
// the striped registry: every GET takes one stripe lock, so throughput
// under parallel load is the striping win. shards=1 approximates the
// old single-mutex registry; shards=16 is the default-class config.
func BenchmarkSessionShards(b *testing.B) {
	const n = 4096
	for _, shards := range []int{1, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			srv, handler, ids := pacedBenchServer(b,
				server.Options{Shards: shards, Workers: 4}, n, false)
			defer srv.Close()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(1))
				rec := httptest.NewRecorder()
				for pb.Next() {
					id := ids[rng.Intn(n)]
					req := httptest.NewRequest(http.MethodGet, "/v1/sessions/"+id, nil)
					rec.Body.Reset()
					handler.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						b.Fatalf("get: %d", rec.Code)
					}
				}
			})
		})
	}
}

// BenchmarkTickWheel measures the paced serving path end to end: one
// iteration advances the wheel by one interval and waits for all n
// sessions' ticks to complete on the pool workers — the batched
// equivalent of n client /tick requests. ns/op is therefore the cost
// of one full paced round over n sessions.
func BenchmarkTickWheel(b *testing.B) {
	for _, n := range []int{256, 2048} {
		b.Run(fmt.Sprintf("sessions=%d", n), func(b *testing.B) {
			clock := newBenchClock()
			srv, _, _ := pacedBenchServer(b,
				server.Options{Workers: 4, Now: clock.Now}, n, true)
			defer srv.Close()
			ticks := srv.Metrics().Counter("paced_ticks")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				want := ticks.Value() + int64(n)
				srv.AdvanceWheel(clock.Advance(4 * time.Second))
				for ticks.Value() < want {
					// Yield rather than sleep: the batches are already on
					// the workers and land in microseconds, but a bare spin
					// would starve them of this core until preemption.
					runtime.Gosched()
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(n), "ticks/op")
		})
	}
}
