package moloc_test

import (
	"testing"

	"moloc"
)

// smallConfig keeps facade tests fast while exercising the whole
// pipeline.
func smallConfig() moloc.Config {
	cfg := moloc.NewConfig()
	cfg.NumTrainTraces = 30
	cfg.NumTestTraces = 8
	cfg.Trace.NumLegs = 8
	return cfg
}

func TestFacadeEndToEnd(t *testing.T) {
	sys, err := moloc.Build(smallConfig())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	dep, err := sys.Deploy(sys.AllAPs())
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	ml, err := dep.NewMoLoc()
	if err != nil {
		t.Fatalf("NewMoLoc: %v", err)
	}
	results := dep.Evaluate(ml)
	s := moloc.Summarize(results)
	if s.N == 0 {
		t.Fatal("no localization attempts recorded")
	}
	if s.Accuracy <= 0.3 {
		t.Errorf("MoLoc accuracy %.2f implausibly low", s.Accuracy)
	}
	c := moloc.ConvergenceStats(results)
	if c.Traces < 0 || c.MeanEL < 0 {
		t.Errorf("bad convergence stats: %+v", c)
	}
}

func TestFacadePlans(t *testing.T) {
	for _, tt := range []struct {
		plan *moloc.Plan
		want string
	}{
		{moloc.OfficeHall(), "office-hall"},
		{moloc.Mall(), "mall"},
		{moloc.Museum(), "museum"},
	} {
		if tt.plan.Name != tt.want {
			t.Errorf("plan name = %s, want %s", tt.plan.Name, tt.want)
		}
		if err := tt.plan.Validate(); err != nil {
			t.Errorf("%s: %v", tt.want, err)
		}
	}
	if len(moloc.DefaultUsers()) != 4 {
		t.Error("expected 4 default users")
	}
}

func TestFacadeLargeErrorView(t *testing.T) {
	sys, err := moloc.Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	dep, err := sys.Deploy(sys.AllAPs()[:4])
	if err != nil {
		t.Fatal(err)
	}
	wifi := dep.Evaluate(dep.NewWiFi())
	locs := moloc.LargeErrorLocs(wifi, 6, 0.25)
	s := moloc.FilterByTrueLoc(wifi, locs)
	if len(locs) > 0 && s.N == 0 {
		t.Error("filter over identified locations should match attempts")
	}
}
